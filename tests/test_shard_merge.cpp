// Shard-merge exactness: the contract that makes the sharded engine safe.
//
// Two layers of proof.  First, the merge algebra itself: combining
// per-shard LatencySketch partials is associative, commutative, and equal
// to the single-stream sketch — integer bin counts make every grouping
// exact.  Second, the engine: a run partitioned over K shards must produce
// a bit-identical SimulationResult for every K, on every code path —
// fixed-gamma, tracked-gamma (EWMA replay), fault schedules exercising all
// seven action kinds, and the closed-loop DTU whose epoch callbacks mutate
// thresholds at shard barriers.  No tolerances anywhere in this file.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec {
namespace {

// --- LatencySketch merge algebra ------------------------------------------

std::vector<double> lognormal_like_values(std::size_t n, std::uint64_t seed) {
  std::vector<double> values;
  random::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    // Spread across many octaves, including sub-1 values and exact ties.
    const double base = random::exponential(rng, 0.8);
    values.push_back(base * base + 1e-3);
    if (i % 17 == 0) values.push_back(0.25);  // repeated exact value
  }
  return values;
}

void expect_sketch_equal(const stats::LatencySketch& a,
                         const stats::LatencySketch& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0})
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "quantile " << q;
}

TEST(SketchMerge, PartitionedMergeEqualsSingleStream) {
  const auto values = lognormal_like_values(5000, 7);
  stats::LatencySketch whole;
  for (const double v : values) whole.add(v);
  for (const std::size_t parts : {2u, 4u, 7u}) {
    std::vector<stats::LatencySketch> partial(parts);
    for (std::size_t i = 0; i < values.size(); ++i)
      partial[i % parts].add(values[i]);
    stats::LatencySketch merged;
    for (const auto& p : partial) merged.merge(p);
    expect_sketch_equal(merged, whole);
  }
}

TEST(SketchMerge, MergeIsAssociativeAndOrderInvariant) {
  const auto values = lognormal_like_values(3000, 21);
  stats::LatencySketch a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(values[i]);

  stats::LatencySketch left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  stats::LatencySketch bc = b;     // a + (b + c)
  bc.merge(c);
  stats::LatencySketch right = a;
  right.merge(bc);
  expect_sketch_equal(left, right);

  stats::LatencySketch reversed = c;  // c + b + a
  reversed.merge(b);
  reversed.merge(a);
  expect_sketch_equal(left, reversed);
}

TEST(SketchMerge, EmptyIsTheMergeIdentity) {
  const auto values = lognormal_like_values(100, 3);
  stats::LatencySketch sketch;
  for (const double v : values) sketch.add(v);
  stats::LatencySketch empty;
  stats::LatencySketch merged = sketch;
  merged.merge(empty);
  expect_sketch_equal(merged, sketch);
  stats::LatencySketch other;   // identity on the left too
  other.merge(sketch);
  expect_sketch_equal(other, sketch);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.p50(), 0.0);
}

// --- Cross-shard-count engine equivalence ---------------------------------

std::vector<core::UserParams> mixed_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(777);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

std::vector<double> mixed_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.25 * static_cast<double>(i % 9));  // incl. fractional
  return xs;
}

void expect_result_identical(const sim::SimulationResult& a,
                             const sim::SimulationResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  ASSERT_EQ(a.cluster_utilization.size(), b.cluster_utilization.size());
  for (std::size_t i = 0; i < a.cluster_utilization.size(); ++i)
    EXPECT_EQ(a.cluster_utilization[i], b.cluster_utilization[i])
        << "cluster " << i;
  ASSERT_EQ(a.cluster_offloads.size(), b.cluster_offloads.size());
  for (std::size_t i = 0; i < a.cluster_offloads.size(); ++i)
    EXPECT_EQ(a.cluster_offloads[i], b.cluster_offloads[i]) << "cluster " << i;
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.mean_offload_fraction, b.mean_offload_fraction);
  expect_sketch_equal(a.local_sojourn_percentiles, b.local_sojourn_percentiles);
  expect_sketch_equal(a.offload_delay_percentiles, b.offload_delay_percentiles);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    const sim::DeviceStats& x = a.devices[i];
    const sim::DeviceStats& y = b.devices[i];
    EXPECT_EQ(x.arrivals, y.arrivals) << "device " << i;
    EXPECT_EQ(x.offloaded, y.offloaded) << "device " << i;
    EXPECT_EQ(x.local_completed, y.local_completed) << "device " << i;
    EXPECT_EQ(x.mean_queue_length, y.mean_queue_length) << "device " << i;
    EXPECT_EQ(x.mean_local_sojourn, y.mean_local_sojourn) << "device " << i;
    EXPECT_EQ(x.mean_offload_delay, y.mean_offload_delay) << "device " << i;
    EXPECT_EQ(x.energy_per_task, y.energy_per_task) << "device " << i;
    EXPECT_EQ(x.empirical_cost, y.empirical_cost) << "device " << i;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    const sim::TimelinePoint& x = a.timeline[i];
    const sim::TimelinePoint& y = b.timeline[i];
    EXPECT_EQ(x.time, y.time) << "sample " << i;
    EXPECT_EQ(x.utilization_estimate, y.utilization_estimate) << "sample " << i;
    EXPECT_EQ(x.mean_queue_length, y.mean_queue_length) << "sample " << i;
    EXPECT_EQ(x.offloads_so_far, y.offloads_so_far) << "sample " << i;
    EXPECT_EQ(x.capacity_scale, y.capacity_scale) << "sample " << i;
    EXPECT_EQ(x.active_devices, y.active_devices) << "sample " << i;
  }
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.restarts, b.faults.restarts);
  EXPECT_EQ(a.faults.churn_joined, b.faults.churn_joined);
  EXPECT_EQ(a.faults.churn_departed, b.faults.churn_departed);
  EXPECT_EQ(a.faults.tasks_lost, b.faults.tasks_lost);
  EXPECT_EQ(a.faults.offloads_rejected, b.faults.offloads_rejected);
  EXPECT_EQ(a.faults.offloads_penalized, b.faults.offloads_penalized);
  EXPECT_EQ(a.faults.min_capacity_scale, b.faults.min_capacity_scale);
  EXPECT_EQ(a.faults.mean_capacity_scale, b.faults.mean_capacity_scale);
  EXPECT_EQ(a.faults.degraded_time, b.faults.degraded_time);
  EXPECT_EQ(a.faults.participating_devices, b.faults.participating_devices);
}

void expect_shard_invariant(sim::SimulationOptions options,
                            const std::shared_ptr<const fault::FaultSchedule>&
                                schedule = nullptr) {
  const auto users = mixed_users(41);  // odd size: uneven shard bounds
  options.faults = schedule;
  options.shards = 1;
  sim::MecSimulation reference(users, 8.0, core::make_reciprocal_delay(),
                               options);
  const sim::SimulationResult base =
      reference.run_tro(mixed_thresholds(reference.total_devices()));
  for (const std::size_t k : {2u, 4u, 7u}) {
    options.shards = k;
    sim::MecSimulation sharded(users, 8.0, core::make_reciprocal_delay(),
                               options);
    const sim::SimulationResult r =
        sharded.run_tro(mixed_thresholds(sharded.total_devices()));
    SCOPED_TRACE("shards = " + std::to_string(k));
    expect_result_identical(base, r);
  }
}

TEST(ShardEquivalence, FixedGammaWithSampling) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  expect_shard_invariant(o);
}

TEST(ShardEquivalence, TrackedGammaWithSampling) {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 80.0;
  o.seed = 99;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 3.0;
  expect_shard_invariant(o);
}

TEST(ShardEquivalence, FaultScheduleAllActionKinds) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(20.0, 0.5);
  schedule->add_capacity_scale(45.0, 1.0);
  schedule->add_outage(12.0, 18.0, fault::OutageMode::kReject);
  schedule->add_outage(30.0, 38.0, fault::OutageMode::kPenalty, 0.4);
  schedule->add_crash(10.0, 3);
  schedule->add_crash(10.0, 17);     // second crash at the same instant
  schedule->add_restart(25.0, 3);
  schedule->add_restart(26.0, 9);    // no-op: device 9 is alive
  schedule->add_user_departure(22.0, 0.37);
  schedule->add_user_departure(23.0, 0.91);
  core::UserParams joiner;
  joiner.arrival_rate = 1.5;
  joiner.service_rate = 3.0;
  joiner.offload_latency = 0.2;
  joiner.energy_local = 1.0;
  joiner.energy_offload = 0.5;
  schedule->add_user_arrival(15.0, joiner);
  schedule->add_user_arrival(75.0, joiner);  // beyond t_end: never joins

  sim::SimulationOptions tracked;
  tracked.warmup = 4.0;
  tracked.horizon = 60.0;
  tracked.seed = 2024;
  tracked.utilization_ewma_tau = 8.0;
  tracked.initial_gamma = 0.2;
  tracked.sample_interval = 4.0;
  expect_shard_invariant(tracked, schedule);

  sim::SimulationOptions pinned;
  pinned.warmup = 4.0;
  pinned.horizon = 60.0;
  pinned.seed = 2024;
  pinned.fixed_gamma = 0.3;
  pinned.sample_interval = 4.0;
  expect_shard_invariant(pinned, schedule);
}

TEST(ShardEquivalence, ClosedLoopDtuMatchesAcrossShardCounts) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 120.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.shards = 1;
  const sim::ClosedLoopResult base =
      run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  for (const std::size_t k : {2u, 4u, 7u}) {
    opt.shards = k;
    const sim::ClosedLoopResult r =
        run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
    SCOPED_TRACE("shards = " + std::to_string(k));
    EXPECT_EQ(base.final_gamma_hat, r.final_gamma_hat);
    EXPECT_EQ(base.estimate_settled, r.estimate_settled);
    ASSERT_EQ(base.thresholds.size(), r.thresholds.size());
    for (std::size_t i = 0; i < base.thresholds.size(); ++i)
      EXPECT_EQ(base.thresholds[i], r.thresholds[i]) << "device " << i;
    ASSERT_EQ(base.epochs.size(), r.epochs.size());
    for (std::size_t i = 0; i < base.epochs.size(); ++i) {
      EXPECT_EQ(base.epochs[i].time, r.epochs[i].time) << "epoch " << i;
      EXPECT_EQ(base.epochs[i].gamma_measured, r.epochs[i].gamma_measured)
          << "epoch " << i;
      EXPECT_EQ(base.epochs[i].gamma_hat, r.epochs[i].gamma_hat)
          << "epoch " << i;
      EXPECT_EQ(base.epochs[i].mean_threshold, r.epochs[i].mean_threshold)
          << "epoch " << i;
    }
    expect_result_identical(base.run, r.run);
  }
}

TEST(ShardEquivalence, MultiClusterTrackedGamma) {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 60.0;
  o.seed = 4242;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 3.0;
  o.topology.clusters = 3;
  o.topology.shares = {0.5, 0.3, 0.2};  // heterogeneous capacities
  expect_shard_invariant(o);
}

TEST(ShardEquivalence, MultiClusterPerClusterBrownouts) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(10.0, 0.5, 1);  // cluster 1 browns out
  schedule->add_capacity_scale(15.0, 0.7, 0);  // then cluster 0, overlapping
  schedule->add_capacity_scale(24.0, 1.0, 1);
  schedule->add_capacity_scale(30.0, 0.8);     // global scale on top
  schedule->add_outage(18.0, 22.0, fault::OutageMode::kPenalty, 0.4);

  sim::SimulationOptions o;
  o.warmup = 3.0;
  o.horizon = 50.0;
  o.seed = 777;
  o.utilization_ewma_tau = 6.0;
  o.initial_gamma = 0.25;
  o.sample_interval = 5.0;
  o.topology.clusters = 2;
  expect_shard_invariant(o, schedule);
}

TEST(ShardEquivalence, MultiClusterClosedLoopDtu) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 80.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.topology.clusters = 2;
  opt.topology.shares = {0.6, 0.4};
  opt.shards = 1;
  const sim::ClosedLoopResult base =
      run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  for (const std::size_t k : {2u, 4u, 7u}) {
    opt.shards = k;
    const sim::ClosedLoopResult r =
        run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
    SCOPED_TRACE("shards = " + std::to_string(k));
    EXPECT_EQ(base.final_gamma_hat, r.final_gamma_hat);
    ASSERT_EQ(base.epochs.size(), r.epochs.size());
    for (std::size_t i = 0; i < base.epochs.size(); ++i)
      EXPECT_EQ(base.epochs[i].gamma_measured, r.epochs[i].gamma_measured)
          << "epoch " << i;
    expect_result_identical(base.run, r.run);
  }
}

TEST(ShardEquivalence, ShardCountIsCappedAtThePopulation) {
  sim::SimulationOptions o;
  o.warmup = 1.0;
  o.horizon = 20.0;
  o.seed = 5;
  o.fixed_gamma = 0.2;
  o.shards = 1;
  const auto users = mixed_users(3);
  sim::MecSimulation reference(users, 8.0, core::make_reciprocal_delay(), o);
  const auto base = reference.run_tro(mixed_thresholds(3));
  o.shards = 64;  // far more shards than devices: clamps to 3
  sim::MecSimulation clamped(users, 8.0, core::make_reciprocal_delay(), o);
  expect_result_identical(base, clamped.run_tro(mixed_thresholds(3)));
}

}  // namespace
}  // namespace mec

#include "mec/random/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::random {
namespace {

double sample_mean(const Distribution& d, int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += d.sample(rng);
  return acc / n;
}

void expect_within_bounds(const Distribution& d, int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, d.lower_bound());
    EXPECT_LE(v, d.upper_bound());
  }
}

TEST(EmptyDistribution, SamplingThrows) {
  Distribution d;
  Xoshiro256 rng(1);
  EXPECT_FALSE(d.valid());
  EXPECT_THROW(d.sample(rng), ContractViolation);
  EXPECT_THROW(d.mean(), ContractViolation);
  EXPECT_EQ(d.describe(), "<empty>");
}

TEST(UniformDistribution, MeanAndBounds) {
  const Distribution d = make_uniform(2.0, 8.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 2.0);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 8.0);
  EXPECT_NEAR(sample_mean(d, 200000, 1), 5.0, 2e-2);
  expect_within_bounds(d, 10000, 2);
}

TEST(UniformDistribution, RejectsInvertedBounds) {
  EXPECT_THROW(make_uniform(3.0, 1.0), ContractViolation);
}

TEST(ConstantDistribution, AlwaysReturnsTheValue) {
  const Distribution d = make_constant(4.2);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 4.2);
  EXPECT_DOUBLE_EQ(d.mean(), 4.2);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 4.2);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 4.2);
}

TEST(TruncatedExponential, SampleMeanMatchesAnalyticTruncatedMean) {
  const Distribution d = make_truncated_exponential(2.0, 6.0);
  EXPECT_LT(d.mean(), 2.0);  // truncation pulls the mean down
  EXPECT_NEAR(sample_mean(d, 300000, 4), d.mean(), 2e-2);
  expect_within_bounds(d, 10000, 5);
}

TEST(TruncatedExponential, RejectsBadParameters) {
  EXPECT_THROW(make_truncated_exponential(-1.0, 5.0), ContractViolation);
  EXPECT_THROW(make_truncated_exponential(4.0, 0.5), ContractViolation);
}

TEST(TruncatedNormal, SampleMeanMatchesAnalyticTruncatedMean) {
  const Distribution d = make_truncated_normal(3.0, 2.0, 0.0, 5.0);
  EXPECT_NEAR(sample_mean(d, 300000, 6), d.mean(), 2e-2);
  expect_within_bounds(d, 10000, 7);
}

TEST(TruncatedNormal, AsymmetricTruncationShiftsMean) {
  // Cutting the right tail of N(0,1) at 0.5 must give a negative mean.
  const Distribution d = make_truncated_normal(0.0, 1.0, -10.0, 0.5);
  EXPECT_LT(d.mean(), 0.0);
  EXPECT_NEAR(sample_mean(d, 300000, 8), d.mean(), 2e-2);
}

TEST(TruncatedLognormal, SampleMeanMatchesAnalyticTruncatedMean) {
  const Distribution d = make_truncated_lognormal(0.0, 0.5, 10.0);
  EXPECT_NEAR(sample_mean(d, 300000, 9), d.mean(), 2e-2);
  expect_within_bounds(d, 10000, 10);
}

TEST(TruncatedGamma, SampleMeanMatchesNumericalTruncatedMean) {
  const Distribution d = make_truncated_gamma(2.0, 1.5, 12.0);
  EXPECT_NEAR(sample_mean(d, 300000, 11), d.mean(), 3e-2);
  expect_within_bounds(d, 10000, 12);
}

TEST(TruncatedGamma, ShapeBelowOneIsSupported) {
  const Distribution d = make_truncated_gamma(0.5, 2.0, 10.0);
  EXPECT_NEAR(sample_mean(d, 300000, 13), d.mean(), 3e-2);
}

TEST(Resampling, DrawsOnlyFromTheGivenData) {
  const Distribution d = make_resampling({1.0, 2.0, 4.0}, "trace");
  Xoshiro256 rng(14);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 4.0);
  }
  EXPECT_NEAR(d.mean(), 7.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 1.0);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 4.0);
}

TEST(Resampling, RejectsEmptyOrNegativeData) {
  EXPECT_THROW(make_resampling({}, "x"), ContractViolation);
  EXPECT_THROW(make_resampling({1.0, -0.1}, "x"), ContractViolation);
}

TEST(Mixture, MeanIsWeightedAverageOfComponents) {
  const Distribution d = make_mixture(
      {make_constant(1.0), make_constant(5.0)}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);  // 0.75*1 + 0.25*5
  EXPECT_NEAR(sample_mean(d, 200000, 15), 2.0, 2e-2);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 1.0);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 5.0);
}

TEST(Mixture, RejectsMismatchedOrDegenerateWeights) {
  EXPECT_THROW(make_mixture({make_constant(1.0)}, {1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(make_mixture({make_constant(1.0)}, {0.0}), ContractViolation);
  EXPECT_THROW(make_mixture({make_constant(1.0)}, {-1.0}), ContractViolation);
  EXPECT_THROW(make_mixture({}, {}), ContractViolation);
}

TEST(Affine, TransformsMeanAndBounds) {
  const Distribution d = make_affine(make_uniform(0.0, 1.0), 4.0, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 1.0);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 5.0);
  EXPECT_NEAR(sample_mean(d, 200000, 16), 3.0, 2e-2);
}

TEST(Affine, NegativeScaleSwapsBounds) {
  const Distribution d = make_affine(make_uniform(0.0, 1.0), -2.0, 0.0);
  EXPECT_DOUBLE_EQ(d.lower_bound(), -2.0);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 0.0);
}

TEST(Affine, ClampAtZeroNeverGoesNegative) {
  const Distribution d =
      make_affine(make_uniform(0.0, 1.0), 2.0, -1.0, /*clamp=*/true);
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(d.lower_bound(), 0.0);
}

TEST(Describe, MentionsTheDistributionFamily) {
  EXPECT_NE(make_uniform(0, 1).describe().find("U("), std::string::npos);
  EXPECT_NE(make_constant(2).describe().find("const"), std::string::npos);
  EXPECT_NE(make_resampling({1.0}, "yolo").describe().find("yolo"),
            std::string::npos);
}

// Property sweep: sampling respects declared bounds for a family of setups.
class DistributionBoundsTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionBoundsTest, SamplesStayWithinDeclaredSupport) {
  expect_within_bounds(GetParam(), 20000, 99);
}

TEST_P(DistributionBoundsTest, SampleMeanIsCloseToDeclaredMean) {
  const Distribution& d = GetParam();
  const double spread = d.upper_bound() - d.lower_bound();
  EXPECT_NEAR(sample_mean(d, 300000, 100), d.mean(),
              std::max(1e-3, 0.01 * spread));
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionBoundsTest,
    ::testing::Values(make_uniform(0.0, 4.0), make_uniform(1.0, 5.0),
                      make_constant(3.0),
                      make_truncated_exponential(1.0, 5.0),
                      make_truncated_normal(2.0, 1.0, 0.0, 4.0),
                      make_truncated_lognormal(0.2, 0.4, 8.0),
                      make_truncated_gamma(3.0, 0.5, 6.0),
                      make_resampling({0.5, 1.5, 2.5, 3.5}, "grid"),
                      make_mixture({make_uniform(0.0, 1.0),
                                    make_uniform(2.0, 3.0)},
                                   {1.0, 1.0})));

}  // namespace
}  // namespace mec::random

// Differential battery for the cluster-aware policy families.
//
// Price-based offloading: on a 2-cluster symmetric scenario the dual ascent
// must drive every cluster's utilization to the target (the MFNE gamma*, the
// closed-form capacity-constrained equilibrium of the scenario) with
// near-equal prices — and the check is shown to be *sensitive*: freezing the
// ascent (price_step = 0) breaks convergence by a measurable margin.
//
// Minority-game activation: the standalone game reproduces the Challet-Zhang
// statistics (mean attendance ~ N/2, herding at small memory, deterministic
// trajectories), and the perturbation switch (scoring the majority instead)
// destroys the self-organization.  The simulator driver is pinned to the
// standalone engine: one epoch = one round, same seed, same trajectory.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/cluster_policies.hpp"
#include "mec/sim/minority_game.hpp"

namespace {

using namespace mec;

// --- price-based offloading -------------------------------------------------

struct PriceFixture {
  population::Population pop;
  core::MfneResult mfne;
};

PriceFixture price_fixture(std::size_t n = 60) {
  PriceFixture f{population::sample_population(
                     population::theoretical_scenario(
                         population::LoadRegime::kAtService, n),
                     7),
                 {}};
  f.mfne = core::solve_mfne(f.pop.users, f.pop.config.delay,
                            f.pop.config.capacity);
  return f;
}

sim::PriceBasedOptions price_options(const PriceFixture& f) {
  sim::PriceBasedOptions po;
  po.gamma_target = f.mfne.gamma_star;
  po.update_period = 5.0;
  po.warmup = 5.0;
  po.horizon = 150.0;
  po.seed = 11;
  po.topology.clusters = 2;
  po.record_timeline = false;
  return po;
}

/// Mean |gamma_k - target| over the last `tail` epochs, worst cluster.
double tail_deviation(const sim::PriceBasedResult& r, double target,
                      std::size_t tail) {
  const std::size_t epochs = r.gamma_epochs.size();
  const std::size_t first = epochs > tail ? epochs - tail : 0;
  const std::size_t clusters = r.final_prices.size();
  double worst = 0.0;
  for (std::size_t k = 0; k < clusters; ++k) {
    double acc = 0.0;
    for (std::size_t e = first; e < epochs; ++e)
      acc += std::abs(r.gamma_epochs[e][k] - target);
    worst = std::max(worst, acc / static_cast<double>(epochs - first));
  }
  return worst;
}

TEST(PriceBasedPolicy, ConvergesToEquilibriumOnSymmetricTwoClusters) {
  const PriceFixture f = price_fixture();
  const sim::PriceBasedOptions po = price_options(f);
  const sim::PriceBasedResult r = sim::run_price_based(
      f.pop.users, f.pop.config.capacity, f.pop.config.delay, po);

  ASSERT_EQ(r.final_prices.size(), 2u);
  ASSERT_FALSE(r.gamma_epochs.empty());
  // Each cluster's utilization settles near the closed-form equilibrium.
  EXPECT_LT(tail_deviation(r, f.mfne.gamma_star, 6), 0.10);
  // The scenario is symmetric (equal shares, even/odd device split of one
  // homogeneous-regime population), so the two dual prices agree closely.
  EXPECT_LT(std::abs(r.final_prices[0] - r.final_prices[1]),
            0.25 * (1.0 + r.final_prices[0] + r.final_prices[1]));
  // Prices moved at all: the ascent engaged.
  EXPECT_GT(r.final_prices[0] + r.final_prices[1], 0.0);
  // The whole-run aggregate tracks the target too.
  EXPECT_NEAR(r.run.measured_utilization, f.mfne.gamma_star, 0.12);
}

// Sensitivity: with the ascent frozen the prices never leave zero and the
// un-priced thresholds over-offload, so the deviation from the equilibrium
// must be clearly larger than in the converged run.
TEST(PriceBasedPolicy, FrozenAscentFailsTheConvergenceCheck) {
  const PriceFixture f = price_fixture();
  sim::PriceBasedOptions po = price_options(f);
  const sim::PriceBasedResult good = sim::run_price_based(
      f.pop.users, f.pop.config.capacity, f.pop.config.delay, po);
  po.price_step = 0.0;  // intentional perturbation
  const sim::PriceBasedResult frozen = sim::run_price_based(
      f.pop.users, f.pop.config.capacity, f.pop.config.delay, po);

  EXPECT_EQ(frozen.final_prices[0], 0.0);
  EXPECT_EQ(frozen.final_prices[1], 0.0);
  const double dev_good = tail_deviation(good, f.mfne.gamma_star, 6);
  const double dev_frozen = tail_deviation(frozen, f.mfne.gamma_star, 6);
  EXPECT_GT(dev_frozen, 2.0 * dev_good)
      << "good " << dev_good << " vs frozen " << dev_frozen;
}

// Prices and activation flags mutate only at epoch barriers, so the whole
// price-based run is bit-identical for every shard count.
TEST(PriceBasedPolicy, RunIsBitwiseInvariantAcrossShardCounts) {
  const PriceFixture f = price_fixture(41);
  sim::PriceBasedOptions po = price_options(f);
  po.horizon = 60.0;
  po.shards = 1;
  const sim::PriceBasedResult base = sim::run_price_based(
      f.pop.users, f.pop.config.capacity, f.pop.config.delay, po);
  for (const std::size_t k : {2u, 4u, 7u}) {
    SCOPED_TRACE("shards = " + std::to_string(k));
    po.shards = k;
    const sim::PriceBasedResult r = sim::run_price_based(
        f.pop.users, f.pop.config.capacity, f.pop.config.delay, po);
    ASSERT_EQ(r.final_prices.size(), base.final_prices.size());
    for (std::size_t c = 0; c < base.final_prices.size(); ++c)
      EXPECT_EQ(r.final_prices[c], base.final_prices[c]) << "cluster " << c;
    EXPECT_EQ(r.run.measured_utilization, base.run.measured_utilization);
    EXPECT_EQ(r.run.mean_cost, base.run.mean_cost);
    ASSERT_EQ(r.run.cluster_utilization.size(),
              base.run.cluster_utilization.size());
    for (std::size_t c = 0; c < base.run.cluster_utilization.size(); ++c)
      EXPECT_EQ(r.run.cluster_utilization[c], base.run.cluster_utilization[c]);
  }
}

// --- minority game ----------------------------------------------------------

struct AttendanceStats {
  double mean = 0.0;
  double variance = 0.0;
  /// Mean |attendance - N/2|: small iff attendance concentrates at half.
  double half_deviation = 0.0;
};

AttendanceStats play(sim::MinorityGameConfig cfg, int rounds,
                     int warmup = 200) {
  sim::MinorityGame game(cfg);
  const double half = static_cast<double>(cfg.agents) / 2.0;
  for (int i = 0; i < warmup; ++i) (void)game.step();
  double sum = 0.0, sq = 0.0, dev = 0.0;
  for (int i = 0; i < rounds; ++i) {
    const double a = static_cast<double>(game.step());
    sum += a;
    sq += a * a;
    dev += std::abs(a - half);
  }
  const double n = static_cast<double>(rounds);
  AttendanceStats s;
  s.mean = sum / n;
  s.variance = sq / n - s.mean * s.mean;
  s.half_deviation = dev / n;
  return s;
}

TEST(MinorityGameEngine, AttendanceConcentratesAtHalfThePopulation) {
  sim::MinorityGameConfig cfg;
  cfg.agents = 101;
  cfg.memory = 5;
  cfg.strategies = 2;
  cfg.seed = 3;
  const AttendanceStats s = play(cfg, 3000);
  // Challet-Zhang: mean attendance self-organizes to N/2 and the variance
  // stays at or below the random-choice level N/4.
  EXPECT_NEAR(s.mean, 50.5, 3.0);
  EXPECT_LT(s.variance, 0.3 * 101.0);
}

TEST(MinorityGameEngine, SmallMemoryHerdsHarderThanLargeMemory) {
  sim::MinorityGameConfig cfg;
  cfg.agents = 101;
  cfg.strategies = 2;
  cfg.seed = 12;
  cfg.memory = 2;  // alpha = 2^m/N << alpha_c: crowded, strong herding
  const AttendanceStats crowded = play(cfg, 3000);
  cfg.memory = 8;  // alpha >> alpha_c: near random-agent behavior
  const AttendanceStats dilute = play(cfg, 3000);
  EXPECT_GT(crowded.variance, 2.0 * dilute.variance)
      << "crowded " << crowded.variance << " vs dilute " << dilute.variance;
}

// The differential perturbation: scoring the majority side as the winner
// flips the feedback positive and attendance stops concentrating at N/2 —
// the population herds to one extreme (frozen or flip-flopping together),
// so the mean deviation from half the population blows up.
TEST(MinorityGameEngine, InvertedScoringDestroysSelfOrganization) {
  sim::MinorityGameConfig cfg;
  cfg.agents = 101;
  cfg.memory = 3;
  cfg.strategies = 2;
  cfg.seed = 5;
  const AttendanceStats minority = play(cfg, 3000);
  cfg.invert = true;
  const AttendanceStats majority = play(cfg, 3000);
  EXPECT_LT(minority.half_deviation, 10.0);
  EXPECT_GT(majority.half_deviation, 20.0)
      << "inverted scoring still concentrates at N/2";
  EXPECT_GT(majority.half_deviation, 2.5 * minority.half_deviation)
      << "minority " << minority.half_deviation << " vs majority "
      << majority.half_deviation;
}

TEST(MinorityGameEngine, TrajectoriesAreDeterministicPerSeed) {
  sim::MinorityGameConfig cfg;
  cfg.agents = 7;
  cfg.memory = 3;
  cfg.seed = 2024;
  sim::MinorityGame a(cfg), b(cfg);
  cfg.seed = 2025;
  sim::MinorityGame c(cfg);
  bool seed_differs = false;
  for (int i = 0; i < 500; ++i) {
    const std::size_t sa = a.step();
    EXPECT_EQ(sa, b.step()) << "round " << i;
    EXPECT_EQ(a.actions(), b.actions()) << "round " << i;
    if (c.step() != sa) seed_differs = true;
  }
  EXPECT_TRUE(seed_differs) << "seed does not influence the trajectory";
}

// The simulator driver steps exactly one game round per epoch barrier with
// agents == clusters, so its attendance trajectory must replicate the
// standalone engine's under the same config.
TEST(MinorityGameDriver, EpochAttendanceMatchesStandaloneGame) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 40),
      19);
  const core::MfneResult mfne = core::solve_mfne(
      pop.users, pop.config.delay, pop.config.capacity);

  sim::MinorityGameRunOptions mo;
  mo.game.seed = 77;
  mo.game.memory = 3;
  mo.game.strategies = 2;
  mo.thresholds.assign(mfne.thresholds.begin(), mfne.thresholds.end());
  mo.update_period = 5.0;
  mo.warmup = 2.0;
  mo.horizon = 80.0;
  mo.seed = 77;
  mo.topology.clusters = 4;
  mo.record_timeline = false;
  const sim::MinorityGameRunResult r = sim::run_minority_game(
      pop.users, pop.config.capacity, pop.config.delay, mo);

  ASSERT_FALSE(r.attendance.empty());
  sim::MinorityGameConfig ref_cfg = mo.game;
  ref_cfg.agents = mo.topology.clusters;
  sim::MinorityGame reference(ref_cfg);
  double acc = 0.0;
  for (std::size_t e = 0; e < r.attendance.size(); ++e) {
    EXPECT_EQ(r.attendance[e], reference.step()) << "epoch " << e;
    acc += static_cast<double>(r.attendance[e]);
  }
  EXPECT_NEAR(r.mean_attendance, acc / static_cast<double>(r.attendance.size()),
              1e-12);
  // Attendance stays inside the playable range and the run itself is sane.
  for (const std::size_t a : r.attendance) EXPECT_LE(a, 4u);
  EXPECT_GT(r.run.mean_cost, 0.0);
  ASSERT_EQ(r.run.cluster_utilization.size(), 4u);
}

}  // namespace

#include "mec/queueing/ctmc.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/queueing/birth_death.hpp"

namespace mec::queueing {
namespace {

TEST(GeneratorMatrixTest, MaintainsZeroRowSums) {
  GeneratorMatrix g(3);
  g.add_rate(0, 1, 2.0);
  g.add_rate(1, 2, 1.0);
  g.add_rate(2, 0, 0.5);
  EXPECT_TRUE(g.is_valid_generator());
  EXPECT_DOUBLE_EQ(g.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0), -2.0);
}

TEST(GeneratorMatrixTest, RejectsInvalidEdits) {
  GeneratorMatrix g(2);
  EXPECT_THROW(g.add_rate(0, 0, 1.0), ContractViolation);
  EXPECT_THROW(g.add_rate(0, 2, 1.0), ContractViolation);
  EXPECT_THROW(g.add_rate(0, 1, -1.0), ContractViolation);
  EXPECT_THROW(GeneratorMatrix(0), ContractViolation);
}

TEST(CtmcStationary, TwoStateChainHasClosedForm) {
  // 0 <-> 1 with rates a=3 (up), b=1 (down): pi = (b, a)/(a+b).
  GeneratorMatrix g(2);
  g.add_rate(0, 1, 3.0);
  g.add_rate(1, 0, 1.0);
  const auto pi = stationary_distribution(g);
  EXPECT_NEAR(pi[0], 0.25, 1e-12);
  EXPECT_NEAR(pi[1], 0.75, 1e-12);
}

TEST(CtmcStationary, MatchesBirthDeathSolverOnRandomChains) {
  const std::vector<double> births{1.3, 0.7, 2.2, 0.4};
  const std::vector<double> deaths{1.0, 2.0, 0.9, 1.5};
  GeneratorMatrix g(5);
  for (std::size_t i = 0; i < births.size(); ++i) {
    g.add_rate(i, i + 1, births[i]);
    g.add_rate(i + 1, i, deaths[i]);
  }
  const auto dense = stationary_distribution(g);
  const auto bd = stationary_distribution(births, deaths);
  ASSERT_EQ(dense.size(), bd.size());
  for (std::size_t i = 0; i < bd.size(); ++i)
    EXPECT_NEAR(dense[i], bd[i], 1e-10);
}

TEST(CtmcStationary, SolvesANonReversibleCycle) {
  // Unidirectional 4-cycle with unequal rates r_i: pi_i proportional to
  // 1/r_i (flow balance around the cycle).
  const std::vector<double> rates{1.0, 2.0, 4.0, 8.0};
  GeneratorMatrix g(4);
  for (std::size_t i = 0; i < 4; ++i) g.add_rate(i, (i + 1) % 4, rates[i]);
  const auto pi = stationary_distribution(g);
  const double z = 1.0 + 0.5 + 0.25 + 0.125;
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(pi[i], (1.0 / rates[i]) / z, 1e-12);
}

TEST(CtmcStationary, SatisfiesGlobalBalanceOnADenseRandomChain) {
  GeneratorMatrix g(6);
  // Deterministic "random-looking" strongly-connected chain.
  int seed = 1;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      seed = (seed * 1103515245 + 12345) & 0x7fffffff;
      g.add_rate(i, j, 0.1 + static_cast<double>(seed % 100) / 25.0);
    }
  const auto pi = stationary_distribution(g);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
  // Check pi * Q = 0 directly.
  for (std::size_t j = 0; j < 6; ++j) {
    double flow = 0.0;
    for (std::size_t i = 0; i < 6; ++i) flow += pi[i] * g.at(i, j);
    EXPECT_NEAR(flow, 0.0, 1e-10) << "column " << j;
  }
}

TEST(CtmcStationary, RejectsReducibleChains) {
  GeneratorMatrix g(3);
  g.add_rate(0, 1, 1.0);
  g.add_rate(1, 0, 1.0);
  // State 2 is isolated: no stationary distribution is unique.
  EXPECT_THROW(stationary_distribution(g), RuntimeError);
}

TEST(CtmcStationary, SingleAbsorbingPairIsHandled) {
  GeneratorMatrix g(1);
  // A 1-state chain has the trivial stationary distribution... but a
  // 1-state generator is all zeros, which is valid and pi = {1}.
  const auto pi = stationary_distribution(g);
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

}  // namespace
}  // namespace mec::queueing

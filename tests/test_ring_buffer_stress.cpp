// Randomized differential stress test of the simulator's RingBuffer (the
// DeviceState local-queue FIFO) against std::deque<double> as the reference
// model, plus directed tests for the edges that matter to the DES: growth
// past the inline capacity, mask wrap-around, and empty/boundary behavior.
#include "mec/sim/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "mec/random/rng.hpp"

namespace mec::sim {
namespace {

/// One op-by-op differential run: after every operation the buffer must
/// agree with the deque on size/empty/front, and a full drain at the end
/// must replay the deque in FIFO order.
void differential_run(std::uint64_t seed, std::size_t ops, double push_bias) {
  random::Xoshiro256 rng(seed);
  RingBuffer ring;
  std::deque<double> ref;
  double next_value = 0.0;

  for (std::size_t i = 0; i < ops; ++i) {
    const double roll = random::uniform01(rng);
    if (ref.empty() || roll < push_bias) {
      ring.push_back(next_value);
      ref.push_back(next_value);
      next_value += 1.0;
    } else if (roll < 0.98) {
      ASSERT_DOUBLE_EQ(ring.front(), ref.front());
      ring.pop_front();
      ref.pop_front();
    } else {
      ring.clear();
      ref.clear();
    }
    ASSERT_EQ(ring.size(), ref.size());
    ASSERT_EQ(ring.empty(), ref.empty());
    if (!ref.empty()) {
      ASSERT_DOUBLE_EQ(ring.front(), ref.front());
    }
    // Capacity stays a power of two and never lags the contents.
    ASSERT_GE(ring.capacity(), ring.size());
    ASSERT_EQ(ring.capacity() & (ring.capacity() - 1), 0u);
  }
  while (!ref.empty()) {
    ASSERT_DOUBLE_EQ(ring.front(), ref.front());
    ring.pop_front();
    ref.pop_front();
  }
  ASSERT_TRUE(ring.empty());
}

TEST(RingBufferStress, MatchesDequeUnderMixedWorkload) {
  // Balanced push/pop keeps the buffer hovering around the inline capacity,
  // exercising the wrap-around mask continuously.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u})
    differential_run(seed, 20000, 0.5);
}

TEST(RingBufferStress, MatchesDequeUnderPushHeavyWorkload) {
  // Push-biased runs force repeated spills past the inline capacity and
  // geometric regrowth of the heap block.
  for (const std::uint64_t seed : {11u, 12u, 13u})
    differential_run(seed, 20000, 0.9);
}

TEST(RingBufferStress, MatchesDequeUnderDrainHeavyWorkload) {
  for (const std::uint64_t seed : {21u, 22u, 23u})
    differential_run(seed, 20000, 0.35);
}

TEST(RingBufferStress, FifoOrderSurvivesGrowthMidWrap) {
  // Arrange head_ != 0, then grow: the copy-out in grow() must preserve
  // FIFO order even when the live span wraps the inline array.
  RingBuffer ring;
  for (int i = 0; i < 4; ++i) ring.push_back(i);    // fill inline storage
  ring.pop_front();
  ring.pop_front();                                 // head_ = 2
  ring.push_back(4.0);
  ring.push_back(5.0);                              // wrapped, full again
  ring.push_back(6.0);                              // triggers grow()
  const double expected[] = {2.0, 3.0, 4.0, 5.0, 6.0};
  for (const double v : expected) {
    ASSERT_DOUBLE_EQ(ring.front(), v);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferStress, GrowthPastInlineKeepsAllElements) {
  RingBuffer ring;
  std::deque<double> ref;
  for (int i = 0; i < 1000; ++i) {
    ring.push_back(i);
    ref.push_back(i);
  }
  EXPECT_EQ(ring.size(), 1000u);
  EXPECT_GE(ring.capacity(), 1024u);
  while (!ref.empty()) {
    ASSERT_DOUBLE_EQ(ring.front(), ref.front());
    ring.pop_front();
    ref.pop_front();
  }
}

TEST(RingBufferStress, ClearKeepsSpilledCapacityAndResetsContents) {
  RingBuffer ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  const std::uint32_t grown = ring.capacity();
  EXPECT_GT(grown, RingBuffer::kInlineCapacity);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), grown);  // workspace reuse keeps the block
  ring.push_back(7.0);
  EXPECT_DOUBLE_EQ(ring.front(), 7.0);
}

TEST(RingBufferStress, EmptyBufferInvariants) {
  RingBuffer ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), RingBuffer::kInlineCapacity);
  ring.push_back(1.0);
  ring.pop_front();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace mec::sim

#include "mec/population/scenario_text.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"

namespace mec::population {
namespace {

constexpr const char* kValid = R"(
# demo fleet
name      = demo
n_users   = 250
capacity  = 10
weight    = 2

delay     = reciprocal 1.1
arrival   = uniform 0 4
service   = uniform 1 5
latency   = lognormal -1.2 0.5 3.0
energy_local   = uniform 0 3
energy_offload = constant 0.5
)";

TEST(ScenarioText, ParsesAFullConfig) {
  const ScenarioConfig cfg = parse_scenario_text(kValid);
  EXPECT_EQ(cfg.name, "demo");
  EXPECT_EQ(cfg.n_users, 250u);
  EXPECT_DOUBLE_EQ(cfg.capacity, 10.0);
  EXPECT_DOUBLE_EQ(cfg.weight, 2.0);
  EXPECT_DOUBLE_EQ(cfg.arrival.mean(), 2.0);
  EXPECT_DOUBLE_EQ(cfg.energy_offload.mean(), 0.5);
  EXPECT_NEAR(cfg.delay(0.0), 1.0 / 1.1, 1e-12);
}

TEST(ScenarioText, ParsedConfigDrivesTheFullPipeline) {
  const ScenarioConfig cfg = parse_scenario_text(kValid);
  const Population pop = sample_population(cfg, 5);
  const auto mfne = core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  EXPECT_GT(mfne.gamma_star, 0.0);
  EXPECT_LT(mfne.gamma_star, 1.0);
}

TEST(ScenarioText, SupportsEveryDistributionFamily) {
  const ScenarioConfig cfg = parse_scenario_text(R"(
n_users = 10
capacity = 5
delay = linear 0.5 2
arrival = exponential 1.0 6.0
service = gamma 2 1.5 12
latency = normal 1 0.5 0 2
energy_local = uniform 0 3
energy_offload = constant 0.2
)");
  EXPECT_GT(cfg.arrival.mean(), 0.0);
  EXPECT_LE(cfg.arrival.upper_bound(), 6.0);
  EXPECT_LE(cfg.latency.upper_bound(), 2.0);
}

TEST(ScenarioText, SupportsEveryDelayFamily) {
  for (const std::string spec :
       {"reciprocal 1.2", "linear 0.1 3", "power 4 2", "constant 1.5",
        "erlangc 16 2.0", "erlangc 16 2.0 0.9"}) {
    const ScenarioConfig cfg = parse_scenario_text(
        "n_users=10\ncapacity=5\ndelay=" + spec +
        "\narrival=uniform 0 2\nservice=uniform 1 3\nlatency=uniform 0 1\n"
        "energy_local=uniform 0 1\nenergy_offload=uniform 0 1\n");
    EXPECT_GE(cfg.delay(0.5), 0.0) << spec;
  }
}

TEST(ScenarioText, SupportsWeightDistribution) {
  const ScenarioConfig cfg = parse_scenario_text(
      "n_users=500\ncapacity=5\ndelay=reciprocal 1.1\n"
      "weight_dist=uniform 0.5 1.5\n"
      "arrival=uniform 0 2\nservice=uniform 1 3\nlatency=uniform 0 1\n"
      "energy_local=uniform 0 1\nenergy_offload=uniform 0 1\n");
  ASSERT_TRUE(cfg.weight_dist.valid());
  const Population pop = sample_population(cfg, 3);
  bool varied = false;
  for (const auto& u : pop.users) varied |= u.weight != pop.users[0].weight;
  EXPECT_TRUE(varied);
}

TEST(ScenarioText, ReportsLineNumbersOnErrors) {
  try {
    parse_scenario_text("n_users = 10\nbogus_line_without_equals\n");
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioText, RejectsUnknownKeysFamiliesAndBadNumbers) {
  EXPECT_THROW(parse_scenario_text("frobnicate = 1\n"), RuntimeError);
  EXPECT_THROW(parse_scenario_text("arrival = zipf 1 2\n"), RuntimeError);
  EXPECT_THROW(parse_scenario_text("capacity = ten\n"), RuntimeError);
  EXPECT_THROW(parse_scenario_text("n_users = 2.5\n"), RuntimeError);
  EXPECT_THROW(parse_scenario_text("arrival = uniform 4 0\n"), RuntimeError);
}

TEST(ScenarioText, RejectsIncompleteConfigs) {
  try {
    parse_scenario_text("n_users = 10\ncapacity = 5\n");
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("missing required key"),
              std::string::npos);
  }
}

TEST(ScenarioText, LoadsFromAFile) {
  const std::string path = "/tmp/mec_scenario_test.mec";
  {
    std::ofstream out(path);
    out << kValid;
  }
  const ScenarioConfig cfg = load_scenario_file(path);
  EXPECT_EQ(cfg.name, "demo");
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file("/nonexistent/nope.mec"), RuntimeError);
}

}  // namespace
}  // namespace mec::population

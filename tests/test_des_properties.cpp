// Property battery: the DES's stationary offload fraction alpha(x) and mean
// local queue length Q(x) must match the exact TRO closed forms (Eq. 7-8,
// queueing::tro_metrics) within replication confidence intervals, across
// arrival intensities theta spanning underload, near-critical (theta within
// 1e-4 of 1, where the textbook closed forms have 0/0 cancellation), and
// overload, and across integer and fractional thresholds.  Replications run
// through parallel::run_replications, so this also exercises the CI
// aggregation path the experiments rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "mec/parallel/replication.hpp"
#include "mec/queueing/threshold_queue.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::sim {
namespace {

std::vector<core::UserParams> homogeneous(std::size_t n, double a, double s) {
  std::vector<core::UserParams> users(n);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = 0.5;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  return users;
}

class TroStationaryTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TroStationaryTest, AlphaAndQMatchClosedForms) {
  const double theta = std::get<0>(GetParam());
  const double x = std::get<1>(GetParam());

  // Homogeneous population, fixed edge utilization: every device is an
  // independent TRO queue with intensity theta, so the population mean is
  // an n-fold average of the per-device stationary quantities.
  constexpr std::size_t kDevices = 40;
  const double service = 2.0;
  const auto users = homogeneous(kDevices, theta * service, service);

  SimulationOptions so;
  so.warmup = 60.0;
  so.horizon = 800.0;
  so.seed = 11;
  so.fixed_gamma = 0.3;

  parallel::ReplicationOptions ro;
  ro.replications = 10;
  ro.threads = 4;
  ro.confidence = 0.999;  // wide interval: 20 (theta, x) cells share a run

  const std::vector<double> thresholds(kDevices, x);
  const parallel::ReplicationResult r = parallel::run_replications(
      users, 10.0, core::make_reciprocal_delay(1.1), so, thresholds, ro);

  const queueing::TroMetrics exact = queueing::tro_metrics(theta, x);
  // The replication CI quantifies the simulation noise; the tiny absolute
  // floor absorbs the O(1/horizon) initial-transient bias the CI cannot see.
  const double alpha_tol = r.mean_offload_fraction.ci.half_width + 2e-3;
  const double q_tol = r.mean_queue_length.ci.half_width + 4e-3;
  EXPECT_NEAR(r.mean_offload_fraction.mean(), exact.offload_probability,
              alpha_tol)
      << "alpha(x) off at theta=" << theta << " x=" << x;
  EXPECT_NEAR(r.mean_queue_length.mean(), exact.mean_queue_length, q_tol)
      << "Q(x) off at theta=" << theta << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TroStationaryTest,
    ::testing::Combine(
        // Underload, moderate, exactly-critical from both sides, overload.
        ::testing::Values(0.2, 0.9, 1.0 - 1e-4, 1.0 + 1e-4, 2.0),
        // Fractional thresholds randomize at the boundary state; integer
        // thresholds take the deterministic branch.
        ::testing::Values(0.5, 1.0, 2.7, 4.0)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& param) {
      const double theta = std::get<0>(param.param);
      const double x = std::get<1>(param.param);
      std::string name = "theta_" + std::to_string(theta) + "_x_" +
                         std::to_string(x);
      for (char& c : name)
        if (c == '.' || c == '-' || c == '+') c = '_';
      return name;
    });

TEST(TroStationaryTest, FractionalThresholdInterpolatesAlpha) {
  // alpha is monotone in x; a fractional threshold must land strictly
  // between its integer neighbors (the Bernoulli boundary draw is what the
  // DES must implement faithfully for Lemma 1's fractional optimum).
  constexpr std::size_t kDevices = 40;
  const double theta = 1.3;
  const auto users = homogeneous(kDevices, theta * 2.0, 2.0);
  SimulationOptions so;
  so.warmup = 60.0;
  so.horizon = 600.0;
  so.seed = 21;
  so.fixed_gamma = 0.3;
  parallel::ReplicationOptions ro;
  ro.replications = 6;
  ro.threads = 2;

  const auto alpha_at = [&](double x) {
    const std::vector<double> xs(kDevices, x);
    return parallel::run_replications(users, 10.0,
                                      core::make_reciprocal_delay(1.1), so, xs,
                                      ro)
        .mean_offload_fraction.mean();
  };
  const double lo = alpha_at(2.0);
  const double mid = alpha_at(2.5);
  const double hi = alpha_at(3.0);
  EXPECT_GT(lo, mid);
  EXPECT_GT(mid, hi);  // alpha decreases as the threshold rises
  const queueing::TroMetrics exact = queueing::tro_metrics(theta, 2.5);
  EXPECT_NEAR(mid, exact.offload_probability, 5e-3);
}

}  // namespace
}  // namespace mec::sim

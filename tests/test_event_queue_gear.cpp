// Regression tests pinning the EventQueue's two-gear behavior: the pop
// sequence must equal a single global (time, seq) priority queue across the
// heap->calendar switch at 16384 events, the hysteresis exit at 8192, and
// events placed exactly on calendar bucket-window edges.  The reference is
// std::priority_queue over the same (time, seq) key — any divergence in pop
// order is a determinism break that would silently change every simulation.
#include "mec/sim/des.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "mec/random/rng.hpp"

namespace mec::sim {
namespace {

// Mirrors des.cpp's gear constants (not exported on purpose; these tests
// pin the observable behavior at the documented sizes).
constexpr std::size_t kSwitchThreshold = 16384;
constexpr std::size_t kExitThreshold = kSwitchThreshold / 2;

struct RefEvent {
  double time;
  std::uint64_t seq;
  std::uint32_t device;
  EventKind kind;
};

struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

using RefQueue = std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater>;

/// Drives the queue and the reference in lockstep; every pop is compared
/// field for field.  A mismatch records a (non-fatal) failure and flips
/// ok() so driver loops can bail out instead of spinning on a broken
/// queue — both structures are always advanced, even on mismatch.
class Harness {
 public:
  void push(double time, EventKind kind, std::uint32_t device) {
    ref_.push(RefEvent{time, seq_++, device, kind});
    queue_.push(time, kind, device);
  }

  void pop_and_check() {
    if (queue_.empty() || ref_.empty()) {
      ADD_FAILURE() << "queue/reference emptied out of step";
      ok_ = false;
      return;
    }
    const RefEvent expected = ref_.top();
    ref_.pop();
    const double announced = queue_.next_time();
    const Event e = queue_.pop();
    EXPECT_DOUBLE_EQ(announced, expected.time);
    EXPECT_DOUBLE_EQ(e.time, expected.time);
    EXPECT_EQ(e.seq, expected.seq);
    EXPECT_EQ(e.device, expected.device);
    EXPECT_EQ(e.kind, expected.kind);
    if (e.time != expected.time || e.seq != expected.seq ||
        e.device != expected.device || e.kind != expected.kind)
      ok_ = false;
    last_time_ = e.time;
  }

  void drain_and_check() {
    while (!ref_.empty() && ok_) pop_and_check();
    EXPECT_TRUE(ok_);
    if (ok_) {
      EXPECT_TRUE(queue_.empty());
    }
  }

  bool ok() const { return ok_; }
  double last_time() const { return last_time_; }
  EventQueue& queue() { return queue_; }
  std::size_t size() const { return queue_.size(); }

 private:
  EventQueue queue_;
  RefQueue ref_;
  std::uint64_t seq_ = 0;
  double last_time_ = 0.0;
  bool ok_ = true;
};

EventKind kind_of(std::uint64_t i) {
  switch (i % 3) {
    case 0: return EventKind::kArrival;
    case 1: return EventKind::kLocalDeparture;
    default: return EventKind::kOffloadDelivery;
  }
}

TEST(EventQueueGear, PopOrderMatchesReferenceAcrossSwitchUpAndExit) {
  Harness h;
  random::Xoshiro256 rng(99);

  // Grow well past the switch threshold with simulation-like pushes
  // (scheduled ahead of the current drain point).
  std::uint64_t i = 0;
  while (h.size() < kSwitchThreshold + 4096) {
    h.push(h.last_time() + 50.0 * random::uniform01(rng), kind_of(i),
           static_cast<std::uint32_t>(i % 1000));
    ++i;
    // Interleave pops so the switch happens mid-traffic, not on a quiet
    // pre-filled queue.
    if (i % 3 == 0) h.pop_and_check();
    ASSERT_TRUE(h.ok());
  }
  EXPECT_TRUE(h.queue().calendar_gear());
  EXPECT_GT(h.queue().calendar_bucket_width(), 0.0);

  // Steady state in calendar gear: push/pop balanced.
  for (std::uint64_t j = 0; j < 20000; ++j) {
    h.push(h.last_time() + 50.0 * random::uniform01(rng), kind_of(j),
           static_cast<std::uint32_t>(j % 1000));
    h.pop_and_check();
    ASSERT_TRUE(h.ok());
  }
  EXPECT_TRUE(h.queue().calendar_gear());

  // Shrink through the hysteresis exit and keep checking order.
  while (h.size() > kExitThreshold / 2 && h.ok()) h.pop_and_check();
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h.queue().calendar_gear());
  EXPECT_DOUBLE_EQ(h.queue().calendar_bucket_width(), 0.0);

  // Back in heap gear, traffic continues and the full drain still matches.
  for (std::uint64_t j = 0; j < 2000; ++j)
    h.push(h.last_time() + 10.0 * random::uniform01(rng), kind_of(j),
           static_cast<std::uint32_t>(j % 64));
  h.drain_and_check();
}

TEST(EventQueueGear, SwitchDoesNotFireBelowThreshold) {
  Harness h;
  random::Xoshiro256 rng(5);
  for (std::size_t i = 0; i < kSwitchThreshold - 1; ++i)
    h.push(100.0 * random::uniform01(rng), kind_of(i),
           static_cast<std::uint32_t>(i % 100));
  EXPECT_FALSE(h.queue().calendar_gear());
  h.drain_and_check();
}

TEST(EventQueueGear, EventsExactlyOnBucketWindowEdges) {
  Harness h;
  random::Xoshiro256 rng(17);

  // Enter calendar gear.
  while (h.size() < kSwitchThreshold + 1000)
    h.push(h.last_time() + 20.0 * random::uniform01(rng),
           EventKind::kArrival, 1);
  ASSERT_TRUE(h.queue().calendar_gear());
  const double width = h.queue().calendar_bucket_width();
  ASSERT_GT(width, 0.0);

  // Schedule bursts exactly on multiples of the bucket width ahead of the
  // drain point — boundary times must bin consistently (an event at the
  // edge belongs to exactly one bucket) and FIFO-tie-break within the
  // burst.  Also place neighbors one ulp-ish off the edge on both sides.
  const double t0 = h.queue().next_time();
  for (int k = 1; k <= 64; ++k) {
    const double edge = t0 + static_cast<double>(k) * width;
    for (std::uint32_t burst = 0; burst < 3; ++burst)
      h.push(edge, EventKind::kLocalDeparture, 100 + burst);
    h.push(edge - width * 1e-12, EventKind::kArrival, 200);
    h.push(edge + width * 1e-12, EventKind::kOffloadDelivery, 201);
  }
  h.drain_and_check();
}

TEST(EventQueueGear, SameTimeFloodStaysFifoThroughSwitch) {
  // A single-instant flood larger than the switch threshold: every event at
  // one time, order fully decided by insertion sequence, crossing the gear
  // switch while being pushed.
  Harness h;
  for (std::size_t i = 0; i < kSwitchThreshold + 2000; ++i)
    h.push(7.25, kind_of(i), static_cast<std::uint32_t>(i % (1u << 20)));
  h.drain_and_check();
}

TEST(EventQueueGear, ShortDelayEventsInsideCurrentWindow) {
  // Events scheduled closer than one bucket width ahead (the side-heap
  // path in calendar gear) must still interleave correctly with the
  // sorted-window cursor.
  Harness h;
  random::Xoshiro256 rng(23);
  while (h.size() < kSwitchThreshold + 1000)
    h.push(h.last_time() + 30.0 * random::uniform01(rng),
           EventKind::kArrival, 1);
  ASSERT_TRUE(h.queue().calendar_gear());
  const double width = h.queue().calendar_bucket_width();
  for (int j = 0; j < 5000; ++j) {
    // Delay far below one bucket width: lands in the live window.
    h.push(h.last_time() + 0.01 * width * random::uniform01(rng),
           EventKind::kLocalDeparture, 2);
    h.pop_and_check();
    h.pop_and_check();
    ASSERT_TRUE(h.ok());
  }
  h.drain_and_check();
}

}  // namespace
}  // namespace mec::sim

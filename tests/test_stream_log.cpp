// Streaming telemetry battery: .meclog round-trips, partial-file recovery,
// CRC corruption detection, stream-vs-timeline equivalence, and the
// cross-shard-count bitwise determinism contract (window frames byte-equal
// for K in {1, 2, 4, 7}, pinned by a golden checksum).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/obs/run_log.hpp"
#include "mec/obs/tail.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using namespace mec;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Temp path namespaced by the running test, so parallel ctest processes
/// never collide on shared scratch files.
std::string test_scoped_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return temp_path(std::string("mec_") + info->test_suite_name() + "_" +
                   info->name() + "_" + suffix);
}

obs::WindowRecord sample_window(std::uint64_t i) {
  obs::WindowRecord w;
  w.time = 2.5 * static_cast<double>(i + 1);
  w.gamma = 0.25 + 0.01 * static_cast<double>(i);
  w.mean_queue_length = 1.75;
  w.queue_second_moment = 5.5;
  w.capacity_scale = 0.8;
  w.active_devices = 41 + i;
  w.offloads_so_far = 100 * (i + 1);
  w.offloads_delta = 100;
  w.events_so_far = 1000 * (i + 1);
  w.events_delta = 1000;
  w.sojourn_count = 17 * (i + 1);
  w.sojourn_min = 0.01;
  w.sojourn_max = 9.5;
  w.sojourn_p50 = 0.6;
  w.sojourn_p95 = 3.1;
  w.sojourn_p99 = 7.0;
  w.offload_count = 5 * (i + 1);
  w.offload_min = 0.2;
  w.offload_max = 4.0;
  w.offload_p50 = 1.0;
  w.offload_p95 = 2.5;
  w.offload_p99 = 3.5;
  w.tasks_lost = i;
  w.offloads_rejected = 2 * i;
  w.offloads_penalized = 3 * i;
  w.fault_events_applied = 4 * i;
  for (std::size_t b = 0; b < obs::kThresholdBins; ++b)
    w.threshold_histogram[b] = static_cast<std::uint32_t>(b * (i + 1));
  // Two-cluster v2 trailer; the per-cluster offloads sum to the scalar total.
  w.cluster_gamma = {w.gamma, 0.1 + 0.005 * static_cast<double>(i)};
  w.cluster_offloads = {60 * (i + 1), 40 * (i + 1)};
  return w;
}

void expect_window_equal(const obs::WindowRecord& a,
                         const obs::WindowRecord& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.queue_second_moment, b.queue_second_moment);
  EXPECT_EQ(a.capacity_scale, b.capacity_scale);
  EXPECT_EQ(a.active_devices, b.active_devices);
  EXPECT_EQ(a.offloads_so_far, b.offloads_so_far);
  EXPECT_EQ(a.offloads_delta, b.offloads_delta);
  EXPECT_EQ(a.events_so_far, b.events_so_far);
  EXPECT_EQ(a.events_delta, b.events_delta);
  EXPECT_EQ(a.sojourn_count, b.sojourn_count);
  EXPECT_EQ(a.sojourn_min, b.sojourn_min);
  EXPECT_EQ(a.sojourn_max, b.sojourn_max);
  EXPECT_EQ(a.sojourn_p50, b.sojourn_p50);
  EXPECT_EQ(a.sojourn_p95, b.sojourn_p95);
  EXPECT_EQ(a.sojourn_p99, b.sojourn_p99);
  EXPECT_EQ(a.offload_count, b.offload_count);
  EXPECT_EQ(a.offload_min, b.offload_min);
  EXPECT_EQ(a.offload_max, b.offload_max);
  EXPECT_EQ(a.offload_p50, b.offload_p50);
  EXPECT_EQ(a.offload_p95, b.offload_p95);
  EXPECT_EQ(a.offload_p99, b.offload_p99);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
  EXPECT_EQ(a.offloads_rejected, b.offloads_rejected);
  EXPECT_EQ(a.offloads_penalized, b.offloads_penalized);
  EXPECT_EQ(a.fault_events_applied, b.fault_events_applied);
  EXPECT_EQ(a.threshold_histogram, b.threshold_histogram);
  ASSERT_EQ(a.cluster_gamma.size(), b.cluster_gamma.size());
  for (std::size_t k = 0; k < a.cluster_gamma.size(); ++k)
    EXPECT_EQ(a.cluster_gamma[k], b.cluster_gamma[k]) << "cluster " << k;
  ASSERT_EQ(a.cluster_offloads.size(), b.cluster_offloads.size());
  for (std::size_t k = 0; k < a.cluster_offloads.size(); ++k)
    EXPECT_EQ(a.cluster_offloads[k], b.cluster_offloads[k]) << "cluster " << k;
}

// --- format round-trips ----------------------------------------------------

TEST(RunLogFormat, PayloadCodecsRoundTrip) {
  const obs::WindowRecord w = sample_window(3);
  expect_window_equal(w, obs::decode_window(obs::encode_window(w)));
  EXPECT_EQ(obs::encode_window(w).size(),
            obs::window_payload_size(w.cluster_gamma.size()));

  // A default-constructed record carries the single-cluster trailer.
  const obs::WindowRecord single;
  EXPECT_EQ(obs::encode_window(single).size(), obs::window_payload_size());
  expect_window_equal(single, obs::decode_window(obs::encode_window(single)));

  // Mismatched per-cluster vectors are a caller bug, not encodable data.
  obs::WindowRecord bad = sample_window(1);
  bad.cluster_offloads.pop_back();
  EXPECT_THROW((void)obs::encode_window(bad), ContractViolation);

  const obs::RunLogMeta meta = {{"n_devices", "41"}, {"gamma", "tracked"}};
  EXPECT_EQ(meta, obs::decode_meta(obs::encode_meta(meta)));

  const std::vector<obs::CounterValue> counters = {
      {0, 0, 12345.0}, {6, obs::kGlobalShard, 0.25}};
  const auto decoded = obs::decode_counters(obs::encode_counters(counters));
  ASSERT_EQ(decoded.size(), counters.size());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(decoded[i].id, counters[i].id);
    EXPECT_EQ(decoded[i].shard, counters[i].shard);
    EXPECT_EQ(decoded[i].value, counters[i].value);
  }

  obs::RunFooter footer;
  footer.windows = 7;
  footer.total_events = 99999;
  footer.measured_utilization = 0.31;
  footer.mean_cost = 2.75;
  footer.horizon = 60.0;
  const obs::RunFooter f2 = obs::decode_footer(obs::encode_footer(footer));
  EXPECT_EQ(f2.windows, footer.windows);
  EXPECT_EQ(f2.total_events, footer.total_events);
  EXPECT_EQ(f2.measured_utilization, footer.measured_utilization);
  EXPECT_EQ(f2.mean_cost, footer.mean_cost);
  EXPECT_EQ(f2.horizon, footer.horizon);
}

TEST(RunLogFormat, WriterReaderRoundTrip) {
  const std::string path = temp_path("mec_roundtrip.meclog");
  const obs::RunLogMeta meta = {{"n_devices", "41"}, {"seed", "7"}};
  {
    obs::RunLogWriter writer(path, meta);
    for (std::uint64_t i = 0; i < 5; ++i) {
      writer.append_window(sample_window(i));
      const obs::CounterValue c{0, 0, static_cast<double>(i)};
      writer.append_counters(std::span<const obs::CounterValue>(&c, 1));
    }
    obs::RunFooter footer;
    footer.windows = 5;
    writer.finish(footer);
    EXPECT_EQ(writer.windows_written(), 5u);
  }
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.complete()) << scan.error;
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.meta, meta);
  ASSERT_EQ(scan.windows.size(), 5u);
  ASSERT_EQ(scan.counters.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    expect_window_equal(scan.windows[i], sample_window(i));
    ASSERT_EQ(scan.counters[i].size(), 1u);
    EXPECT_EQ(scan.counters[i][0].value, static_cast<double>(i));
  }
  ASSERT_TRUE(scan.footer.has_value());
  EXPECT_EQ(scan.footer->windows, 5u);
  std::filesystem::remove(path);
}

TEST(RunLogFormat, TruncatedTailIsRecoveredNotFatal) {
  const std::string path = temp_path("mec_truncated.meclog");
  {
    obs::RunLogWriter writer(path, {{"k", "v"}});
    for (std::uint64_t i = 0; i < 4; ++i)
      writer.append_window(sample_window(i));
    // No finish(): simulates a crashed or still-running writer.
  }
  const auto full_size = std::filesystem::file_size(path);
  // Chop into the last window frame: the first three must still decode.
  std::filesystem::resize_file(path, full_size - 37);
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_FALSE(scan.corrupt) << scan.error;
  EXPECT_FALSE(scan.complete());
  ASSERT_EQ(scan.windows.size(), 3u);
  expect_window_equal(scan.windows[2], sample_window(2));
  std::filesystem::remove(path);
}

TEST(RunLogFormat, FollowSeesFramesAsTheFileGrows) {
  const std::string path = temp_path("mec_follow.meclog");
  const std::string grown = temp_path("mec_follow_full.meclog");
  {
    obs::RunLogWriter writer(grown, {{"k", "v"}});
    for (std::uint64_t i = 0; i < 3; ++i)
      writer.append_window(sample_window(i));
    obs::RunFooter footer;
    footer.windows = 3;
    writer.finish(footer);
  }
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(grown, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Start with the header + meta + one window, and a half-written frame.
  const std::size_t meta_frame = 8 + obs::encode_meta({{"k", "v"}}).size() + 4;
  const std::size_t window_frame = 8 + obs::window_payload_size(2) + 4;
  const std::size_t first_cut = 24 + meta_frame + window_frame + 20;
  ASSERT_LT(first_cut, bytes.size());
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(first_cut));
  }
  obs::RunLogReader reader(path);
  obs::Frame frame;
  ASSERT_EQ(reader.next(frame), obs::ReadStatus::kFrame);  // meta
  ASSERT_EQ(reader.next(frame), obs::ReadStatus::kFrame);  // window 0
  EXPECT_EQ(reader.next(frame), obs::ReadStatus::kTruncated);
  // The writer catches up; the parked reader resumes at the boundary.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(bytes.data() + first_cut),
              static_cast<std::streamsize>(bytes.size() - first_cut));
  }
  ASSERT_EQ(reader.next(frame), obs::ReadStatus::kFrame);  // window 1
  EXPECT_EQ(frame.kind, obs::FrameKind::kWindow);
  expect_window_equal(obs::decode_window(frame.payload), sample_window(1));
  ASSERT_EQ(reader.next(frame), obs::ReadStatus::kFrame);  // window 2
  ASSERT_EQ(reader.next(frame), obs::ReadStatus::kFrame);  // footer
  EXPECT_EQ(frame.kind, obs::FrameKind::kFooter);
  EXPECT_EQ(reader.next(frame), obs::ReadStatus::kEndOfData);
  std::filesystem::remove(path);
  std::filesystem::remove(grown);
}

TEST(RunLogFormat, CorruptedByteIsDetectedByCrc) {
  const std::string path = temp_path("mec_corrupt.meclog");
  {
    obs::RunLogWriter writer(path, {{"k", "v"}});
    for (std::uint64_t i = 0; i < 3; ++i)
      writer.append_window(sample_window(i));
    obs::RunFooter footer;
    footer.windows = 3;
    writer.finish(footer);
  }
  // Flip one byte inside the second window's payload.
  const std::size_t meta_frame = 8 + obs::encode_meta({{"k", "v"}}).size() + 4;
  const std::size_t window_frame = 8 + obs::window_payload_size(2) + 4;
  const std::size_t victim = 24 + meta_frame + window_frame + 8 + 11;
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(victim));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(victim));
    file.write(&byte, 1);
  }
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_FALSE(scan.complete());
  EXPECT_FALSE(scan.error.empty());
  // Everything before the corruption is still served.
  ASSERT_EQ(scan.windows.size(), 1u);
  expect_window_equal(scan.windows[0], sample_window(0));
  // `mec tail --check` must flag it via the exit status.
  obs::TailOptions check;
  check.check = true;
  EXPECT_EQ(obs::run_tail(path, check), 1);
  std::filesystem::remove(path);
}

TEST(RunLogFormat, ForeignOrMissingHeaderThrows) {
  const std::string path = temp_path("mec_foreign.meclog");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a meclog";
  }
  EXPECT_THROW(obs::RunLogReader reader(path), RuntimeError);
  EXPECT_THROW((void)obs::scan_log(temp_path("mec_nonexistent.meclog")),
               RuntimeError);
  std::filesystem::remove(path);
}

// The schema bump: a v1 log shares the family magic but its window frames
// have no per-cluster trailer, so parsing one as v2 would misread every
// window.  The reader must refuse up front with a diagnostic that names
// both versions instead of surfacing garbage or a CRC error downstream.
TEST(RunLogFormat, PriorSchemaVersionIsRejectedWithClearError) {
  const std::string path = temp_path("mec_v1_schema.meclog");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(obs::kMagic.data(), obs::kMagic.size());
    const auto put_u32 = [&out](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        const char byte = static_cast<char>((v >> (8 * i)) & 0xFFu);
        out.write(&byte, 1);
      }
    };
    put_u32(1u);  // the retired v1 schema revision
    put_u32(static_cast<std::uint32_t>(obs::kThresholdBins));
    put_u32(0u);  // flags
    put_u32(0u);  // reserved
  }
  try {
    obs::RunLogReader reader(path);
    FAIL() << "v1 header was accepted by a v2 reader";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported .meclog schema"), std::string::npos)
        << what;
    EXPECT_NE(what.find("v1"), std::string::npos) << what;
    EXPECT_NE(what.find("v2"), std::string::npos) << what;
  }
  // scan_log (the `mec tail --check` entry point) refuses the same way.
  EXPECT_THROW((void)obs::scan_log(path), RuntimeError);
  std::filesystem::remove(path);
}

// --- stream vs in-memory timeline ------------------------------------------

std::vector<core::UserParams> mixed_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(777);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

std::vector<double> mixed_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.25 * static_cast<double>(i % 9));  // incl. fractional
  return xs;
}

TEST(StreamEquivalence, WindowsMatchTheInMemoryTimeline) {
  const std::string path = temp_path("mec_stream_timeline.meclog");
  const auto users = mixed_users(41);
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  o.stream_log = path;  // stream AND record: the two views must agree
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r = des.run_tro(mixed_thresholds(users.size()));

  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.complete()) << scan.error;
  ASSERT_EQ(scan.windows.size(), r.timeline.size());
  std::uint64_t prev_offloads = 0;
  for (std::size_t i = 0; i < scan.windows.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    const obs::WindowRecord& w = scan.windows[i];
    const sim::TimelinePoint& p = r.timeline[i];
    EXPECT_EQ(w.time, p.time);
    EXPECT_EQ(w.gamma, p.utilization_estimate);
    EXPECT_EQ(w.mean_queue_length, p.mean_queue_length);
    EXPECT_EQ(w.capacity_scale, p.capacity_scale);
    EXPECT_EQ(w.active_devices, p.active_devices);
    EXPECT_EQ(w.offloads_so_far, p.offloads_so_far);
    EXPECT_EQ(w.offloads_delta, p.offloads_so_far - prev_offloads);
    prev_offloads = p.offloads_so_far;
  }
  // The final window's cumulative sketch snapshot equals the run totals.
  const obs::WindowRecord& last = scan.windows.back();
  EXPECT_EQ(last.sojourn_count, r.local_sojourn_percentiles.count());
  EXPECT_EQ(last.sojourn_p50, r.local_sojourn_percentiles.p50());
  EXPECT_EQ(last.sojourn_p99, r.local_sojourn_percentiles.p99());
  EXPECT_EQ(last.offload_count, r.offload_delay_percentiles.count());
  EXPECT_EQ(last.offload_p95, r.offload_delay_percentiles.p95());
  // Footer totals match the result.
  ASSERT_TRUE(scan.footer.has_value());
  EXPECT_EQ(scan.footer->windows, scan.windows.size());
  EXPECT_EQ(scan.footer->total_events, r.total_events);
  EXPECT_EQ(scan.footer->measured_utilization, r.measured_utilization);
  EXPECT_EQ(scan.footer->mean_cost, r.mean_cost);
  // The threshold histogram covers every device with a finite threshold.
  std::uint64_t counted = 0;
  for (const std::uint32_t c : last.threshold_histogram) counted += c;
  EXPECT_EQ(counted, users.size());
  std::filesystem::remove(path);
}

TEST(StreamEquivalence, RecordTimelineOffStillStreams) {
  const std::string path = temp_path("mec_stream_notimeline.meclog");
  const auto users = mixed_users(23);
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 30.0;
  o.seed = 5;
  o.utilization_ewma_tau = 5.0;
  o.sample_interval = 3.0;
  o.stream_log = path;
  o.record_timeline = false;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r = des.run_tro(mixed_thresholds(users.size()));
  EXPECT_TRUE(r.timeline.empty());
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.complete()) << scan.error;
  EXPECT_GT(scan.windows.size(), 5u);
  std::filesystem::remove(path);
}

TEST(StreamEquivalence, StreamLogWithoutSampleIntervalIsRejected) {
  const auto users = mixed_users(3);
  sim::SimulationOptions o;
  o.stream_log = temp_path("mec_never_written.meclog");
  o.sample_interval = 0.0;
  EXPECT_THROW(
      sim::MecSimulation(users, 8.0, core::make_reciprocal_delay(), o),
      ContractViolation);
}

// --- cross-shard-count bitwise determinism ---------------------------------

/// Concatenated window-frame payload bytes of a log (the deterministic
/// subset: meta mentions the shard count and counter frames carry wall-clock
/// timings, so neither participates in the contract).
std::vector<std::uint8_t> window_bytes(const std::string& path) {
  obs::RunLogReader reader(path);
  std::vector<std::uint8_t> bytes;
  obs::Frame frame;
  while (reader.next(frame) == obs::ReadStatus::kFrame)
    if (frame.kind == obs::FrameKind::kWindow)
      bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  return bytes;
}

void expect_stream_shard_invariant(
    sim::SimulationOptions options,
    const std::shared_ptr<const fault::FaultSchedule>& schedule,
    std::uint32_t* golden_crc_out = nullptr) {
  const auto users = mixed_users(41);  // odd size: uneven shard bounds
  options.faults = schedule;
  options.shards = 1;
  const std::string base_path = test_scoped_path("xk_base.meclog");
  options.stream_log = base_path;
  {
    sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                           options);
    (void)des.run_tro(mixed_thresholds(des.total_devices()));
  }
  const std::vector<std::uint8_t> base = window_bytes(base_path);
  ASSERT_FALSE(base.empty());
  if (golden_crc_out != nullptr) *golden_crc_out = obs::crc32(base);
  for (const std::size_t k : {2u, 4u, 7u}) {
    SCOPED_TRACE("shards = " + std::to_string(k));
    const std::string path =
        test_scoped_path("xk_" + std::to_string(k) + ".meclog");
    options.shards = k;
    options.stream_log = path;
    sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                           options);
    (void)des.run_tro(mixed_thresholds(des.total_devices()));
    EXPECT_EQ(window_bytes(path), base)
        << "streamed window frames diverged from the K=1 byte stream";
    std::filesystem::remove(path);
  }
  std::filesystem::remove(base_path);
}

TEST(StreamShardInvariance, FixedGamma) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  expect_stream_shard_invariant(o, nullptr);
}

TEST(StreamShardInvariance, TrackedGamma) {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 80.0;
  o.seed = 99;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 3.0;
  expect_stream_shard_invariant(o, nullptr);
}

TEST(StreamShardInvariance, FaultScheduleAllActionKinds) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(20.0, 0.5);
  schedule->add_capacity_scale(45.0, 1.0);
  schedule->add_outage(12.0, 18.0, fault::OutageMode::kReject);
  schedule->add_outage(30.0, 38.0, fault::OutageMode::kPenalty, 0.4);
  schedule->add_crash(10.0, 3);
  schedule->add_restart(25.0, 3);
  schedule->add_user_departure(22.0, 0.37);
  core::UserParams joiner;
  joiner.arrival_rate = 1.5;
  joiner.service_rate = 3.0;
  joiner.offload_latency = 0.2;
  joiner.energy_local = 1.0;
  joiner.energy_offload = 0.5;
  schedule->add_user_arrival(15.0, joiner);

  sim::SimulationOptions tracked;
  tracked.warmup = 4.0;
  tracked.horizon = 60.0;
  tracked.seed = 2024;
  tracked.utilization_ewma_tau = 8.0;
  tracked.initial_gamma = 0.2;
  tracked.sample_interval = 4.0;
  expect_stream_shard_invariant(tracked, schedule);
}

// Multi-cluster tracked gamma with heterogeneous shares and per-cluster
// brown-outs: the per-cluster v2 trailer must be part of the byte-identity
// contract too, not just the scalar fields.
TEST(StreamShardInvariance, MultiClusterPerClusterBrownouts) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(10.0, 0.5, 1);   // brown-out cluster 1
  schedule->add_capacity_scale(16.0, 0.7, 0);   // milder one on cluster 0
  schedule->add_capacity_scale(26.0, 1.0, 1);   // cluster 1 recovers
  schedule->add_capacity_scale(32.0, 0.8);      // global dip on top
  schedule->add_outage(20.0, 24.0, fault::OutageMode::kPenalty, 0.4);

  sim::SimulationOptions o;
  o.warmup = 3.0;
  o.horizon = 50.0;
  o.seed = 424242;
  o.utilization_ewma_tau = 6.0;
  o.initial_gamma = 0.25;
  o.sample_interval = 4.0;
  o.topology.clusters = 2;
  o.topology.shares = {0.65, 0.35};
  expect_stream_shard_invariant(o, schedule);
}

// Sanity on the v2 trailer contents themselves: a 2-cluster run streams
// 2-entry per-cluster vectors whose offloads sum to the scalar cumulative
// count in every window.
TEST(StreamShardInvariance, MultiClusterTrailerIsConsistent) {
  const auto users = mixed_users(41);
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 40.0;
  o.seed = 98;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 2.0;
  o.topology.clusters = 3;
  o.topology.shares = {0.5, 0.3, 0.2};
  o.stream_log = test_scoped_path("trailer.meclog");
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r = des.run_tro(mixed_thresholds(users.size()));
  const obs::LogScan scan = obs::scan_log(o.stream_log);
  EXPECT_TRUE(scan.complete()) << scan.error;
  ASSERT_FALSE(scan.windows.empty());
  for (std::size_t i = 0; i < scan.windows.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    const obs::WindowRecord& w = scan.windows[i];
    ASSERT_EQ(w.cluster_gamma.size(), 3u);
    ASSERT_EQ(w.cluster_offloads.size(), 3u);
    std::uint64_t sum = 0;
    for (const std::uint64_t n : w.cluster_offloads) sum += n;
    EXPECT_EQ(sum, w.offloads_so_far);
  }
  // The final window's per-cluster counts equal the run totals.
  ASSERT_EQ(r.cluster_offloads.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(scan.windows.back().cluster_offloads[k], r.cluster_offloads[k]);
  std::filesystem::remove(o.stream_log);
}

TEST(StreamShardInvariance, ClosedLoopDtu) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 120.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.sample_interval = 2.5;
  opt.shards = 1;
  opt.stream_log = test_scoped_path("xk_cl_base.meclog");
  (void)run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  const std::vector<std::uint8_t> base = window_bytes(opt.stream_log);
  ASSERT_FALSE(base.empty());
  std::filesystem::remove(opt.stream_log);
  for (const std::size_t k : {2u, 4u, 7u}) {
    SCOPED_TRACE("shards = " + std::to_string(k));
    opt.shards = k;
    opt.stream_log = test_scoped_path("xk_cl_" + std::to_string(k) + ".meclog");
    (void)run_closed_loop(pop.users, pop.config.capacity, pop.config.delay,
                          opt);
    EXPECT_EQ(window_bytes(opt.stream_log), base);
    std::filesystem::remove(opt.stream_log);
  }
}

// Closed-loop DTU on a 2-cluster topology: Algorithm 1 broadcasts the scalar
// aggregate while the stream carries per-cluster trajectories; both must stay
// byte-identical across shard counts.
TEST(StreamShardInvariance, MultiClusterClosedLoopDtu) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 90.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.sample_interval = 2.5;
  opt.topology.clusters = 2;
  opt.topology.shares = {0.6, 0.4};
  opt.shards = 1;
  opt.stream_log = test_scoped_path("xk_mccl_base.meclog");
  (void)run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  const std::vector<std::uint8_t> base = window_bytes(opt.stream_log);
  ASSERT_FALSE(base.empty());
  {
    const obs::LogScan scan = obs::scan_log(opt.stream_log);
    ASSERT_FALSE(scan.windows.empty());
    EXPECT_EQ(scan.windows.back().cluster_gamma.size(), 2u);
  }
  std::filesystem::remove(opt.stream_log);
  for (const std::size_t k : {2u, 4u, 7u}) {
    SCOPED_TRACE("shards = " + std::to_string(k));
    opt.shards = k;
    opt.stream_log =
        test_scoped_path("xk_mccl_" + std::to_string(k) + ".meclog");
    (void)run_closed_loop(pop.users, pop.config.capacity, pop.config.delay,
                          opt);
    EXPECT_EQ(window_bytes(opt.stream_log), base);
    std::filesystem::remove(opt.stream_log);
  }
}

// CRC32 of the pinned scenario's window byte stream, as produced by the
// reference toolchain (same compiler flags as CI).  Regenerate on
// intentional change — see the test comment below.
constexpr std::uint32_t kFixedGammaGoldenCrc = 3942917030u;

// The golden regression pin: the fixed-gamma scenario's window byte stream,
// hashed.  This catches silent format or engine-semantics drift that the
// self-relative cross-K comparisons above cannot see.  If an *intentional*
// format or engine change moves the value, regenerate with:
//   MEC_PRINT_STREAM_GOLDEN=1 ./test_stream_log \
//       --gtest_filter=StreamGolden.FixedGammaWindowBytes
TEST(StreamGolden, FixedGammaWindowBytes) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  std::uint32_t crc = 0;
  expect_stream_shard_invariant(o, nullptr, &crc);
  if (std::getenv("MEC_PRINT_STREAM_GOLDEN") != nullptr)
    std::printf("STREAM GOLDEN crc32 = %uu\n", crc);
  EXPECT_EQ(crc, kFixedGammaGoldenCrc);
}

}  // namespace

#include "mec/population/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mec/common/error.hpp"
#include "mec/random/empirical_data.hpp"

namespace mec::population {
namespace {

TEST(TheoreticalScenario, EncodesThePaperParameters) {
  const ScenarioConfig cfg =
      theoretical_scenario(LoadRegime::kAtService);
  EXPECT_EQ(cfg.n_users, 10000u);
  EXPECT_DOUBLE_EQ(cfg.capacity, 10.0);
  EXPECT_DOUBLE_EQ(cfg.weight, 1.0);
  EXPECT_DOUBLE_EQ(cfg.arrival.mean(), 3.0);   // U(0,6)
  EXPECT_DOUBLE_EQ(cfg.service.mean(), 3.0);   // U(1,5)
  EXPECT_DOUBLE_EQ(cfg.latency.upper_bound(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.energy_local.upper_bound(), 3.0);
  EXPECT_DOUBLE_EQ(cfg.energy_offload.upper_bound(), 1.0);
  // g(0) = 1/1.1.
  EXPECT_NEAR(cfg.delay(0.0), 1.0 / 1.1, 1e-12);
}

TEST(TheoreticalScenario, ThreeRegimesOrderTheArrivalMean) {
  const double lo = theoretical_scenario(LoadRegime::kBelowService)
                        .arrival.mean();
  const double mid = theoretical_scenario(LoadRegime::kAtService)
                         .arrival.mean();
  const double hi = theoretical_scenario(LoadRegime::kAboveService)
                        .arrival.mean();
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(mid, 3.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
}

TEST(ComparisonScenario, UsesWiderLatencyRange) {
  const ScenarioConfig cfg =
      theoretical_comparison_scenario(LoadRegime::kBelowService);
  EXPECT_DOUBLE_EQ(cfg.latency.upper_bound(), 5.0);  // T ~ U(0,5)
  EXPECT_EQ(cfg.n_users, 1000u);
}

TEST(PracticalScenario, ServiceRatesComeFromTheMeasuredDataset) {
  const ScenarioConfig cfg = practical_scenario(LoadRegime::kBelowService);
  EXPECT_NEAR(cfg.service.mean(), random::kPaperMeanServiceRate, 1e-6);
  EXPECT_EQ(cfg.n_users, 1000u);
  EXPECT_DOUBLE_EQ(cfg.arrival.mean(), 8.0);  // U(4,12)
}

TEST(PracticalScenario, AtServiceRegimeMatchesMeansExactly) {
  const ScenarioConfig cfg = practical_scenario(LoadRegime::kAtService);
  EXPECT_NEAR(cfg.arrival.mean(), 8.94370, 1e-4);  // U(7.3474, 10.54)
}

TEST(PracticalScenario, LatencyMeanIsConfigurable) {
  const ScenarioConfig cfg =
      practical_scenario(LoadRegime::kAboveService, 100, 3.5);
  EXPECT_NEAR(cfg.latency.mean(), 3.5, 1e-9);
  EXPECT_THROW(practical_scenario(LoadRegime::kAtService, 100, -1.0),
               mec::ContractViolation);
}

TEST(SamplePopulation, RespectsScenarioBoundsAndContracts) {
  const ScenarioConfig cfg =
      theoretical_scenario(LoadRegime::kAboveService, 5000);
  const Population pop = sample_population(cfg, 3);
  ASSERT_EQ(pop.size(), 5000u);
  for (const auto& u : pop.users) {
    EXPECT_GT(u.arrival_rate, 0.0);
    EXPECT_LE(u.arrival_rate, 8.0);
    EXPECT_GE(u.service_rate, 1.0);
    EXPECT_LE(u.service_rate, 5.0);
    EXPECT_GE(u.offload_latency, 0.0);
    EXPECT_LE(u.offload_latency, 1.0);
    EXPECT_GE(u.energy_local, 0.0);
    EXPECT_LE(u.energy_local, 3.0);
    EXPECT_GE(u.energy_offload, 0.0);
    EXPECT_LE(u.energy_offload, 1.0);
    EXPECT_DOUBLE_EQ(u.weight, 1.0);
  }
}

TEST(SamplePopulation, EmpiricalMeansApproachScenarioMeans) {
  const ScenarioConfig cfg =
      theoretical_scenario(LoadRegime::kAtService, 20000);
  const Population pop = sample_population(cfg, 4);
  EXPECT_NEAR(pop.mean_arrival_rate(), 3.0, 0.05);
  EXPECT_NEAR(pop.mean_service_rate(), 3.0, 0.05);
}

TEST(SamplePopulation, IsDeterministicPerSeed) {
  const ScenarioConfig cfg =
      theoretical_scenario(LoadRegime::kBelowService, 100);
  const Population a = sample_population(cfg, 9);
  const Population b = sample_population(cfg, 9);
  const Population c = sample_population(cfg, 10);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true, any_equal_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal &= a.users[i].arrival_rate == b.users[i].arrival_rate;
    any_equal_c |= a.users[i].arrival_rate == c.users[i].arrival_rate;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_equal_c);
}

TEST(SamplePopulation, PracticalDrawsServiceRatesFromTheDataset) {
  const ScenarioConfig cfg = practical_scenario(LoadRegime::kAtService, 2000);
  const Population pop = sample_population(cfg, 5);
  EXPECT_NEAR(pop.mean_service_rate(), random::kPaperMeanServiceRate, 0.5);
  // Every sampled rate must be one of the dataset's 1000 values: check a few
  // have exact duplicates (resampling from a finite set).
  int duplicates = 0;
  for (std::size_t i = 1; i < 200; ++i)
    for (std::size_t j = 0; j < i; ++j)
      duplicates += pop.users[i].service_rate == pop.users[j].service_rate;
  EXPECT_GT(duplicates, 0);
}

TEST(SamplePopulation, HeterogeneousWeightsWhenDistributionIsSet) {
  ScenarioConfig cfg = theoretical_scenario(LoadRegime::kAtService, 2000);
  cfg.weight_dist = random::make_uniform(0.5, 2.5);  // 0 < w <= w_max
  const Population pop = sample_population(cfg, 6);
  double lo = 1e9, hi = 0.0, mean = 0.0;
  for (const auto& u : pop.users) {
    lo = std::min(lo, u.weight);
    hi = std::max(hi, u.weight);
    mean += u.weight;
  }
  EXPECT_GE(lo, 0.5);
  EXPECT_LE(hi, 2.5);
  EXPECT_NEAR(mean / static_cast<double>(pop.size()), 1.5, 0.05);
  EXPECT_GT(hi - lo, 1.0);  // genuinely heterogeneous
}

TEST(SamplePopulation, ScalarWeightUsedWhenNoDistribution) {
  ScenarioConfig cfg = theoretical_scenario(LoadRegime::kAtService, 50);
  cfg.weight = 3.5;
  const Population pop = sample_population(cfg, 7);
  for (const auto& u : pop.users) EXPECT_DOUBLE_EQ(u.weight, 3.5);
}

TEST(ScenarioConfig, CheckRejectsIncompleteConfigs) {
  ScenarioConfig cfg;  // nothing set
  EXPECT_THROW(cfg.check(), mec::ContractViolation);
  cfg = theoretical_scenario(LoadRegime::kAtService);
  cfg.capacity = 0.0;
  EXPECT_THROW(cfg.check(), mec::ContractViolation);
}

TEST(LoadRegimeNames, AreHumanReadable) {
  EXPECT_EQ(to_string(LoadRegime::kBelowService), "E[A] < E[S]");
  EXPECT_EQ(to_string(LoadRegime::kAtService), "E[A] = E[S]");
  EXPECT_EQ(to_string(LoadRegime::kAboveService), "E[A] > E[S]");
}

}  // namespace
}  // namespace mec::population

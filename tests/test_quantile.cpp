#include "mec/stats/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::stats {
namespace {

double exact_quantile(std::vector<double> data, double q) {
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - std::floor(pos);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

TEST(P2QuantileTest, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), ContractViolation);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile med(0.5);
  med.add(3.0);
  EXPECT_DOUBLE_EQ(med.value(), 3.0);
  med.add(1.0);
  EXPECT_DOUBLE_EQ(med.value(), 2.0);  // interpolated median of {1,3}
  med.add(2.0);
  EXPECT_DOUBLE_EQ(med.value(), 2.0);
}

TEST(P2QuantileTest, TracksUniformQuantilesClosely) {
  random::Xoshiro256 rng(1);
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  std::vector<double> data;
  for (int i = 0; i < 200000; ++i) {
    const double v = random::uniform(rng, 0.0, 10.0);
    data.push_back(v);
    p50.add(v);
    p95.add(v);
    p99.add(v);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(data, 0.50), 0.05);
  EXPECT_NEAR(p95.value(), exact_quantile(data, 0.95), 0.05);
  EXPECT_NEAR(p99.value(), exact_quantile(data, 0.99), 0.05);
}

TEST(P2QuantileTest, TracksHeavyTailedQuantiles) {
  // Exponential data: p99 is ~4.6 means out; relative error matters here.
  random::Xoshiro256 rng(2);
  P2Quantile p99(0.99);
  std::vector<double> data;
  for (int i = 0; i < 300000; ++i) {
    const double v = random::exponential(rng, 1.0);
    data.push_back(v);
    p99.add(v);
  }
  const double exact = exact_quantile(data, 0.99);
  EXPECT_NEAR(p99.value() / exact, 1.0, 0.05);
}

TEST(P2QuantileTest, MonotoneAcrossQuantileLevels) {
  random::Xoshiro256 rng(3);
  LatencyPercentiles lat;
  for (int i = 0; i < 100000; ++i)
    lat.add(random::exponential(rng, 2.0));
  EXPECT_LT(lat.p50(), lat.p95());
  EXPECT_LT(lat.p95(), lat.p99());
  EXPECT_EQ(lat.count(), 100000u);
}

TEST(P2QuantileTest, HandlesConstantStreams) {
  P2Quantile q(0.9);
  for (int i = 0; i < 1000; ++i) q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(P2QuantileTest, HandlesSortedAndReversedStreams) {
  for (const bool reversed : {false, true}) {
    P2Quantile q(0.5);
    for (int i = 0; i < 10001; ++i)
      q.add(reversed ? 10000.0 - i : static_cast<double>(i));
    EXPECT_NEAR(q.value(), 5000.0, 150.0);
  }
}

}  // namespace
}  // namespace mec::stats

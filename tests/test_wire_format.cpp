// Wire-format pinning for the rank-transport frames (parallel/transport.cpp)
// and the .meclog envelope they share.
//
// The transport protocol is a cross-process contract: a coordinator built
// from one revision of the tree must refuse — not misparse — frames from a
// worker built from another.  Three layers of defense are pinned here:
//
//   1. golden byte vectors: the exact on-wire bytes of the envelope and of
//      each payload codec, so any layout drift (field order, width,
//      endianness) fails loudly against hand-written expectations;
//   2. rejection tests: truncation at every byte boundary, CRC corruption
//      at every byte position, oversized length fields, trailing bytes;
//   3. round-trip property tests: randomized payloads survive
//      encode -> decode -> re-encode bit-identically.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/net/protocol.hpp"
#include "mec/obs/run_log.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace {

using namespace mec;
using namespace mec::parallel;

std::vector<std::uint8_t> bytes(std::initializer_list<unsigned> vals) {
  std::vector<std::uint8_t> out;
  out.reserve(vals.size());
  for (const unsigned v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

void append_f64_le(std::vector<std::uint8_t>& out, double v) {
  const auto u = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFFu));
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const RuntimeError& e) {
    return e.what();
  }
  return {};
}

// --- envelope --------------------------------------------------------------

TEST(TransportWire, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 (IEEE 802.3, reflected) check value: any change to
  // the polynomial, reflection, or final XOR breaks every stored log.
  const std::string check = "123456789";
  const std::span<const std::uint8_t> payload(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size());
  EXPECT_EQ(obs::crc32(payload), 0xCBF43926u);
}

TEST(TransportWire, FrameEnvelopeMatchesTheGoldenBytes) {
  // u32 kind | u32 length | payload | u32 CRC32(payload), all little-endian.
  const std::vector<std::uint8_t> payload =
      bytes({0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39});
  const std::vector<std::uint8_t> frame =
      wire::encode_frame(wire::kFrameAdvance, payload);
  const std::vector<std::uint8_t> golden = bytes({
      0x10, 0x00, 0x00, 0x00,                                // kind = 0x10
      0x09, 0x00, 0x00, 0x00,                                // length = 9
      0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,  // "123456789"
      0x26, 0x39, 0xF4, 0xCB,                                // CRC 0xCBF43926
  });
  EXPECT_EQ(frame, golden);
  EXPECT_EQ(frame.size(), wire::kFrameOverhead + payload.size());

  std::size_t consumed = 0;
  const wire::DecodedFrame decoded = wire::decode_frame(frame, &consumed);
  EXPECT_EQ(decoded.kind, wire::kFrameAdvance);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_EQ(consumed, frame.size());
}

TEST(TransportWire, FrameKindsArePinnedAndDisjointFromRunLogKinds) {
  // Renumbering a frame kind silently breaks cross-revision runs; pin them.
  EXPECT_EQ(wire::kFrameAdvance, 0x10u);
  EXPECT_EQ(wire::kFrameThresholds, 0x11u);
  EXPECT_EQ(wire::kFrameFinalize, 0x12u);
  EXPECT_EQ(wire::kFrameHello, 0x13u);
  EXPECT_EQ(wire::kFramePopulation, 0x14u);
  EXPECT_EQ(wire::kFrameBarrier, 0x20u);
  EXPECT_EQ(wire::kFrameFinal, 0x21u);
  EXPECT_EQ(wire::kFrameHelloAck, 0x22u);
  EXPECT_EQ(wire::kFrameReady, 0x23u);
  EXPECT_EQ(wire::kFrameError, 0x2Fu);
  // Disjoint from obs::FrameKind (1..4), so a misdirected frame can never
  // masquerade as run-log data.
  EXPECT_GT(wire::kFrameAdvance,
            static_cast<std::uint32_t>(obs::FrameKind::kFooter));
}

TEST(TransportWire, DecodeRejectsTruncationAtEveryByteBoundary) {
  const std::vector<std::uint8_t> frame = wire::encode_frame(
      wire::kFrameBarrier, bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(frame.data(), cut);
    EXPECT_THROW(wire::decode_frame(prefix), RuntimeError) << "cut=" << cut;
  }
  const std::string what = thrown_message(
      [&] { wire::decode_frame(std::span(frame.data(), frame.size() - 1)); });
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
}

TEST(TransportWire, DecodeRejectsCorruptionAtEveryBytePosition) {
  const std::vector<std::uint8_t> frame = wire::encode_frame(
      wire::kFrameBarrier, bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  // Any flipped bit in the payload or the checksum is a CRC mismatch.  (A
  // corrupted kind/length header is also rejected, but the diagnostic
  // depends on which field the flip lands in.)
  for (std::size_t pos = 8; pos < frame.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = frame;
    corrupt[pos] ^= 0x01;
    const std::string what =
        thrown_message([&] { wire::decode_frame(corrupt); });
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos)
        << "pos=" << pos << " what=" << what;
  }
}

TEST(TransportWire, DecodeRejectsOversizedLengthFields) {
  std::vector<std::uint8_t> frame = wire::encode_frame(
      wire::kFrameBarrier, bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  for (std::size_t i = 4; i < 8; ++i) frame[i] = 0xFF;  // length = 2^32 - 1
  const std::string what = thrown_message([&] { wire::decode_frame(frame); });
  EXPECT_NE(what.find("size cap"), std::string::npos) << what;
}

// --- barrier request -------------------------------------------------------

TEST(TransportWire, BarrierRequestMatchesTheGoldenBytes) {
  BarrierRequest req;
  req.limit = 1.0;
  req.inclusive = true;
  req.want_q = false;
  req.want_q2 = true;
  req.want_sketches = false;
  req.want_queue_stats = true;
  const std::vector<std::uint8_t> golden = bytes({
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,  // f64 1.0
      0x01, 0x00, 0x01, 0x00, 0x01,                    // the five flags
  });
  EXPECT_EQ(wire::encode_barrier_request(req), golden);
}

TEST(TransportWire, BarrierRequestRoundTripsEveryFlagCombination) {
  for (unsigned mask = 0; mask < 32; ++mask) {
    BarrierRequest req;
    req.limit = 0.125 * static_cast<double>(mask + 1);
    req.inclusive = (mask & 1u) != 0;
    req.want_q = (mask & 2u) != 0;
    req.want_q2 = (mask & 4u) != 0;
    req.want_sketches = (mask & 8u) != 0;
    req.want_queue_stats = (mask & 16u) != 0;
    const BarrierRequest back =
        wire::decode_barrier_request(wire::encode_barrier_request(req));
    EXPECT_EQ(back.limit, req.limit);
    EXPECT_EQ(back.inclusive, req.inclusive);
    EXPECT_EQ(back.want_q, req.want_q);
    EXPECT_EQ(back.want_q2, req.want_q2);
    EXPECT_EQ(back.want_sketches, req.want_sketches);
    EXPECT_EQ(back.want_queue_stats, req.want_queue_stats);
  }
}

// --- thresholds ------------------------------------------------------------

TEST(TransportWire, ThresholdsMatchTheGoldenBytes) {
  std::vector<std::uint8_t> golden = bytes({0x02, 0x00, 0x00, 0x00});
  append_f64_le(golden, 1.0);
  append_f64_le(golden, -1.0);
  const double values[] = {1.0, -1.0};
  EXPECT_EQ(wire::encode_thresholds(values), golden);
  EXPECT_EQ(wire::decode_thresholds(golden), std::vector<double>(
                                                 {1.0, -1.0}));
}

// --- device totals ---------------------------------------------------------

TEST(TransportWire, DeviceTotalsMatchTheGoldenBytes) {
  DeviceTotals t;
  t.arrivals = 1;
  t.offloaded = 2;
  t.local_completed = 3;
  t.queue_integral = 0.5;
  t.local_sojourn_sum = 1.5;
  t.offload_delay_sum = 2.5;
  t.energy_sum = 2.0;
  std::vector<std::uint8_t> golden = bytes({
      0x07, 0x00, 0x00, 0x00,  // device_lo = 7
      0x08, 0x00, 0x00, 0x00,  // device_hi = 8
  });
  append_u64_le(golden, 1);
  append_u64_le(golden, 2);
  append_u64_le(golden, 3);
  append_f64_le(golden, 0.5);
  append_f64_le(golden, 1.5);
  append_f64_le(golden, 2.5);
  append_f64_le(golden, 2.0);
  const std::vector<std::uint8_t> enc =
      wire::encode_device_totals(7, 8, std::span(&t, 1));
  EXPECT_EQ(enc, golden);
  EXPECT_EQ(enc.size(), 8 + wire::kDeviceTotalsWireSize);

  const wire::FinalTotals back = wire::decode_device_totals(enc);
  EXPECT_EQ(back.device_lo, 7u);
  EXPECT_EQ(back.device_hi, 8u);
  ASSERT_EQ(back.totals.size(), 1u);
  EXPECT_EQ(back.totals[0].arrivals, 1u);
  EXPECT_EQ(back.totals[0].offloaded, 2u);
  EXPECT_EQ(back.totals[0].local_completed, 3u);
  EXPECT_EQ(back.totals[0].queue_integral, 0.5);
  EXPECT_EQ(back.totals[0].local_sojourn_sum, 1.5);
  EXPECT_EQ(back.totals[0].offload_delay_sum, 2.5);
  EXPECT_EQ(back.totals[0].energy_sum, 2.0);
}

TEST(TransportWire, DeviceTotalsRejectMalformedPayloads) {
  DeviceTotals t;
  std::vector<std::uint8_t> enc =
      wire::encode_device_totals(0, 1, std::span(&t, 1));
  // Trailing bytes mean the peer and we disagree about the layout.
  enc.push_back(0x00);
  std::string what =
      thrown_message([&] { wire::decode_device_totals(enc); });
  EXPECT_NE(what.find("trailing"), std::string::npos) << what;
  // An inverted device range cannot size the totals vector.
  std::vector<std::uint8_t> inverted =
      bytes({0x05, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00});
  what = thrown_message([&] { wire::decode_device_totals(inverted); });
  EXPECT_NE(what.find("inverted"), std::string::npos) << what;
}

// --- barrier payload -------------------------------------------------------

TEST(TransportWire, EmptyBarrierPayloadMatchesTheGoldenBytes) {
  // Zero shards, no queue sums: u32 shard count + u8 has_q.
  const std::vector<std::uint8_t> enc =
      wire::encode_barrier_payload({}, false, 0.0, 0.0);
  EXPECT_EQ(enc, bytes({0x00, 0x00, 0x00, 0x00, 0x00}));

  std::vector<std::uint8_t> trailing = enc;
  trailing.push_back(0x00);
  const std::string what =
      thrown_message([&] { wire::decode_barrier_payload(trailing); });
  EXPECT_NE(what.find("trailing bytes"), std::string::npos) << what;
}

wire::RankBarrierData sample_rank_data(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 100.0);
  wire::RankBarrierData data;
  data.shards.resize(2);

  wire::RankBarrierData::Shard& a = data.shards[0];
  a.shard = 3;
  a.events = rng();
  a.offloads_in_window = rng() % 1000;
  a.tasks_lost = rng() % 10;
  a.offloads_rejected = rng() % 10;
  a.offloads_penalized = rng() % 10;
  a.cluster_offloads = {rng() % 100, rng() % 100, rng() % 100};
  a.flipped = true;
  a.log.resize(5);
  for (sim::OffloadRecord& rec : a.log) {
    rec.time = uni(rng);
    rec.latency = uni(rng);
    rec.penalty = (rng() % 2) != 0 ? uni(rng) : 0.0;
    rec.device = static_cast<std::uint32_t>(rng() % 4096);
    rec.cluster = static_cast<std::uint16_t>(rng() % 3);
    rec.measured = (rng() % 2) != 0;
    rec.penalized = rec.penalty > 0.0;
  }
  a.has_sketches = true;
  for (int i = 0; i < 64; ++i) a.local_sojourns.add(uni(rng));
  for (int i = 0; i < 16; ++i) a.offload_delays.add(uni(rng));
  a.has_queue_stats = true;
  a.queue_depth = uni(rng);
  a.calendar_gear = 2.0;
  a.gear_switches = 5.0;
  a.calendar_retunes = 1.0;
  a.leg_seconds = uni(rng) * 1e-3;

  // The second shard exercises the all-optional-blocks-absent arm.
  wire::RankBarrierData::Shard& b = data.shards[1];
  b.shard = 4;
  b.events = rng();
  b.cluster_offloads = {0, 0, 0};

  data.has_q = true;
  data.total_q = static_cast<double>(rng() % 1000);
  data.total_q2 = static_cast<double>(rng() % 100000);
  return data;
}

TEST(TransportWire, BarrierPayloadRoundTripsBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const wire::RankBarrierData data = sample_rank_data(seed);
    const std::vector<ShardBarrierView> views = data.views();
    const std::vector<std::uint8_t> enc =
        wire::encode_barrier_payload(views, data.has_q, data.total_q,
                                     data.total_q2);
    const wire::RankBarrierData back = wire::decode_barrier_payload(enc);
    // decode(encode(x)) == x, proven by re-encoding: the codec has no
    // redundant representations, so byte equality is state equality.
    const std::vector<std::uint8_t> enc2 = wire::encode_barrier_payload(
        back.views(), back.has_q, back.total_q, back.total_q2);
    EXPECT_EQ(enc, enc2) << "seed=" << seed;

    // Spot-check the semantic fields the coordinator actually consumes.
    ASSERT_EQ(back.shards.size(), data.shards.size());
    const auto& a0 = data.shards[0];
    const auto& b0 = back.shards[0];
    EXPECT_EQ(b0.shard, a0.shard);
    EXPECT_EQ(b0.events, a0.events);
    EXPECT_EQ(b0.cluster_offloads, a0.cluster_offloads);
    ASSERT_EQ(b0.log.size(), a0.log.size());
    for (std::size_t i = 0; i < a0.log.size(); ++i) {
      EXPECT_EQ(b0.log[i].time, a0.log[i].time);
      EXPECT_EQ(b0.log[i].latency, a0.log[i].latency);
      EXPECT_EQ(b0.log[i].device, a0.log[i].device);
      EXPECT_EQ(b0.log[i].cluster, a0.log[i].cluster);
      EXPECT_EQ(b0.log[i].measured, a0.log[i].measured);
      EXPECT_EQ(b0.log[i].penalized, a0.log[i].penalized);
    }
    // Sketches cross the boundary bit-identically: count, extrema, and
    // every quantile the stream log will later report.
    EXPECT_EQ(b0.local_sojourns.count(), a0.local_sojourns.count());
    EXPECT_EQ(b0.local_sojourns.min(), a0.local_sojourns.min());
    EXPECT_EQ(b0.local_sojourns.max(), a0.local_sojourns.max());
    EXPECT_EQ(b0.local_sojourns.p50(), a0.local_sojourns.p50());
    EXPECT_EQ(b0.local_sojourns.p99(), a0.local_sojourns.p99());
    EXPECT_EQ(back.total_q, data.total_q);
    EXPECT_EQ(back.total_q2, data.total_q2);
  }
}

TEST(TransportWire, BarrierPayloadRejectsTruncation) {
  const wire::RankBarrierData data = sample_rank_data(99);
  const std::vector<std::uint8_t> enc = wire::encode_barrier_payload(
      data.views(), data.has_q, data.total_q, data.total_q2);
  // Cut inside the shard block, the log, the sketch, and the queue stats.
  for (const std::size_t cut : {std::size_t{3}, enc.size() / 4,
                                enc.size() / 2, enc.size() - 1}) {
    EXPECT_THROW(
        wire::decode_barrier_payload(std::span(enc.data(), cut)),
        RuntimeError)
        << "cut=" << cut;
  }
}

// --- .meclog envelope ------------------------------------------------------

std::string test_scoped_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name = std::string(info->test_suite_name()) + "_" +
                           info->name() + "_" + suffix;
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string write_minimal_log(const std::string& path) {
  obs::RunLogMeta meta;
  meta.emplace_back("scenario", "wire-format-test");
  obs::RunLogWriter writer(path, meta);
  obs::WindowRecord window;
  window.time = 1.0;
  window.gamma = 0.25;
  writer.append_window(window);
  obs::RunFooter footer;
  footer.windows = 1;
  writer.finish(footer);
  return path;
}

TEST(RunLogWire, ScanRejectsAFlippedPayloadByte) {
  const std::string path = test_scoped_path("corrupt.meclog");
  write_minimal_log(path);
  // Flip one byte inside the first frame's payload (the 24-byte file
  // header is magic + version + padding; frames start right after it).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(24 + 8);  // first frame: skip kind + length
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(24 + 8);
    f.write(&byte, 1);
  }
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.corrupt);
  std::filesystem::remove(path);
}

TEST(RunLogWire, ScanTreatsAPartialTailFrameAsTruncation) {
  const std::string path = test_scoped_path("truncated.meclog");
  write_minimal_log(path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);  // cut into the footer frame
  const obs::LogScan scan = obs::scan_log(path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_FALSE(scan.footer.has_value());
  EXPECT_EQ(scan.windows.size(), 1u);
  std::filesystem::remove(path);
}

// --- TCP handshake + population frames (net/protocol.cpp) ------------------

void append_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

TEST(NetWire, HelloMatchesTheGoldenBytes) {
  net::wire::Hello hello;
  hello.rank = 3;
  hello.ranks = 8;
  const std::vector<std::uint8_t> payload = net::wire::encode_hello(hello);
  // magic "MECT" | revision | rank | ranks, all u32 LE.
  const std::vector<std::uint8_t> golden = bytes({
      0x4D, 0x45, 0x43, 0x54,  // "MECT"
      0x01, 0x00, 0x00, 0x00,  // schema revision 1
      0x03, 0x00, 0x00, 0x00,  // rank 3
      0x08, 0x00, 0x00, 0x00,  // of 8 ranks
  });
  EXPECT_EQ(payload, golden);
  EXPECT_EQ(payload.size(), net::wire::kHelloWireSize);
  const net::wire::Hello back = net::wire::decode_hello(payload);
  EXPECT_EQ(back.revision, net::wire::kSchemaRevision);
  EXPECT_EQ(back.rank, 3u);
  EXPECT_EQ(back.ranks, 8u);
}

TEST(NetWire, HelloAckMatchesTheGoldenBytes) {
  net::wire::HelloAck ack;
  ack.rank = 3;
  const std::vector<std::uint8_t> payload = net::wire::encode_hello_ack(ack);
  const std::vector<std::uint8_t> golden = bytes({
      0x4D, 0x45, 0x43, 0x54,  // "MECT"
      0x01, 0x00, 0x00, 0x00,  // schema revision 1
      0x03, 0x00, 0x00, 0x00,  // rank echo
  });
  EXPECT_EQ(payload, golden);
  EXPECT_EQ(payload.size(), net::wire::kHelloAckWireSize);
  const net::wire::HelloAck back = net::wire::decode_hello_ack(payload);
  EXPECT_EQ(back.revision, net::wire::kSchemaRevision);
  EXPECT_EQ(back.rank, 3u);
}

TEST(NetWire, HelloRejectsABadMagicNamingTheExpectation) {
  // An HTTP client (or any non-mec peer) that happens to frame correctly
  // still dies at the magic, with a diagnostic a human can act on.
  std::vector<std::uint8_t> payload = net::wire::encode_hello({});
  payload[0] = 'H';
  payload[1] = 'T';
  payload[2] = 'T';
  payload[3] = 'P';
  const std::string what =
      thrown_message([&] { net::wire::decode_hello(payload); });
  EXPECT_NE(what.find("magic mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("not a mec transport endpoint"), std::string::npos)
      << what;
  EXPECT_NE(what.find("MECT"), std::string::npos) << what;
}

TEST(NetWire, HelloRejectsTruncationAndTrailingBytes) {
  std::vector<std::uint8_t> payload = net::wire::encode_hello({});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(payload.data(), cut);
    EXPECT_THROW(net::wire::decode_hello(prefix), RuntimeError)
        << "cut=" << cut;
  }
  payload.push_back(0x00);
  const std::string what =
      thrown_message([&] { net::wire::decode_hello(payload); });
  EXPECT_NE(what.find("trailing bytes"), std::string::npos) << what;
  std::vector<std::uint8_t> ack = net::wire::encode_hello_ack({});
  ack.push_back(0x00);
  EXPECT_THROW(net::wire::decode_hello_ack(ack), RuntimeError);
}

/// A two-rank population whose rank 1 owns shards [2, 4) of 4 and devices
/// [2, 5) of 5 — small enough to write the golden bytes by hand, rich
/// enough to cover every field (faults on, empirical latency data).
net::wire::WorkerPopulation sample_population() {
  net::wire::WorkerPopulation pop;
  pop.rank = 1;
  pop.ranks = 2;
  pop.seed = 0x0123456789ABCDEFull;
  pop.n_devices = 5;
  pop.n_initial = 4;
  pop.n_clusters = 2;
  pop.shard_count = 4;
  pop.shard_lo = 2;
  pop.shard_hi = 4;
  pop.device_lo = 2;
  pop.device_hi = 5;
  pop.warmup = 1.5;
  pop.t_end = 40.0;
  pop.has_fixed_gamma = true;
  pop.fixed_delay = 0.75;
  pop.with_faults = true;
  pop.service.kind = sim::SamplerSpec::Kind::kErlang;
  pop.service.param = 4.0;
  pop.latency.kind = sim::SamplerSpec::Kind::kEmpirical;
  pop.latency.data = {0.25, 1.0};
  for (std::size_t i = 0; i < 3; ++i) {
    core::UserParams u;
    u.arrival_rate = 1.0 + static_cast<double>(i);
    u.service_rate = 3.0;
    u.offload_latency = 0.2;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
    pop.users.push_back(u);
    pop.rng_states.push_back({10 * i + 1, 10 * i + 2, 10 * i + 3, 10 * i + 4});
  }
  fault::ResolvedAction a;
  a.time = 12.0;
  a.kind = fault::FaultKind::kOutageBegin;
  a.device = fault::ResolvedAction::kNoDevice;
  a.value = 0.4;
  a.outage_mode = fault::OutageMode::kPenalty;
  a.cluster = 1;
  a.effective = true;
  a.active_after = 3;
  pop.actions.push_back(a);
  return pop;
}

std::vector<std::uint8_t> golden_population_bytes(
    const net::wire::WorkerPopulation& pop) {
  std::vector<std::uint8_t> out;
  append_u32_le(out, pop.rank);
  append_u32_le(out, pop.ranks);
  append_u64_le(out, pop.seed);
  append_u32_le(out, pop.n_devices);
  append_u32_le(out, pop.n_initial);
  append_u32_le(out, pop.n_clusters);
  append_u32_le(out, pop.shard_count);
  append_u32_le(out, pop.shard_lo);
  append_u32_le(out, pop.shard_hi);
  append_u32_le(out, pop.device_lo);
  append_u32_le(out, pop.device_hi);
  append_f64_le(out, pop.warmup);
  append_f64_le(out, pop.t_end);
  out.push_back(pop.has_fixed_gamma ? 1 : 0);
  append_f64_le(out, pop.fixed_delay);
  out.push_back(pop.with_faults ? 1 : 0);
  for (const sim::SamplerSpec* spec : {&pop.service, &pop.latency}) {
    out.push_back(static_cast<std::uint8_t>(spec->kind));
    append_f64_le(out, spec->param);
    append_u32_le(out, static_cast<std::uint32_t>(spec->data.size()));
    for (const double v : spec->data) append_f64_le(out, v);
  }
  append_u32_le(out, static_cast<std::uint32_t>(pop.users.size()));
  for (const core::UserParams& u : pop.users) {
    append_f64_le(out, u.arrival_rate);
    append_f64_le(out, u.service_rate);
    append_f64_le(out, u.offload_latency);
    append_f64_le(out, u.energy_local);
    append_f64_le(out, u.energy_offload);
    append_f64_le(out, u.weight);
  }
  append_u32_le(out, static_cast<std::uint32_t>(pop.rng_states.size()));
  for (const auto& s : pop.rng_states)
    for (const std::uint64_t word : s) append_u64_le(out, word);
  append_u32_le(out, static_cast<std::uint32_t>(pop.actions.size()));
  for (const fault::ResolvedAction& a : pop.actions) {
    append_f64_le(out, a.time);
    out.push_back(static_cast<std::uint8_t>(a.kind));
    append_u32_le(out, a.device);
    append_f64_le(out, a.value);
    out.push_back(static_cast<std::uint8_t>(a.outage_mode));
    append_u16_le(out, a.cluster);
    out.push_back(a.effective ? 1 : 0);
    append_u32_le(out, a.active_after);
  }
  return out;
}

TEST(NetWire, PopulationMatchesTheGoldenBytes) {
  const net::wire::WorkerPopulation pop = sample_population();
  const std::vector<std::uint8_t> payload = net::wire::encode_population(pop);
  EXPECT_EQ(payload, golden_population_bytes(pop));
}

TEST(NetWire, PopulationRoundTripsBitIdentically) {
  std::mt19937_64 gen(20260808);
  std::uniform_real_distribution<double> real(0.01, 10.0);
  net::wire::WorkerPopulation pop = sample_population();
  pop.users.clear();
  pop.rng_states.clear();
  for (std::size_t i = 0; i < 3; ++i) {
    core::UserParams u;
    u.arrival_rate = real(gen);
    u.service_rate = real(gen);
    u.offload_latency = real(gen);
    u.energy_local = real(gen);
    u.energy_offload = real(gen);
    u.weight = real(gen);
    pop.users.push_back(u);
    pop.rng_states.push_back({gen(), gen(), gen(), gen()});
  }
  const std::vector<std::uint8_t> payload = net::wire::encode_population(pop);
  const net::wire::WorkerPopulation back =
      net::wire::decode_population(payload);
  // Re-encoding the decode must reproduce the exact bytes: nothing on this
  // path may truncate, reorder, or renormalize (rng state words and f64 bit
  // patterns included).
  EXPECT_EQ(net::wire::encode_population(back), payload);
  EXPECT_EQ(back.rank, pop.rank);
  EXPECT_EQ(back.seed, pop.seed);
  EXPECT_EQ(back.rng_states, pop.rng_states);
  EXPECT_EQ(back.latency.data, pop.latency.data);
  EXPECT_TRUE(back.service == pop.service);
}

TEST(NetWire, PopulationFrameSurvivesTheEnvelopeBatteries) {
  // Through the shared envelope: truncation at every byte boundary and
  // corruption at every payload/CRC position must refuse loudly, exactly as
  // for barrier frames (the daemon reads populations with the same decoder).
  const std::vector<std::uint8_t> payload =
      net::wire::encode_population(sample_population());
  const std::vector<std::uint8_t> frame =
      wire::encode_frame(wire::kFramePopulation, payload);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(frame.data(), cut);
    EXPECT_THROW(wire::decode_frame(prefix), RuntimeError) << "cut=" << cut;
  }
  for (std::size_t pos = 8; pos < frame.size(); pos += 7) {
    std::vector<std::uint8_t> corrupt = frame;
    corrupt[pos] ^= 0x01;
    const std::string what =
        thrown_message([&] { wire::decode_frame(corrupt); });
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos)
        << "pos=" << pos << " what=" << what;
  }
}

TEST(NetWire, PopulationRejectsTruncationAtEveryByteBoundary) {
  const std::vector<std::uint8_t> payload =
      net::wire::encode_population(sample_population());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(payload.data(), cut);
    EXPECT_THROW(net::wire::decode_population(prefix), RuntimeError)
        << "cut=" << cut;
  }
}

TEST(NetWire, PopulationRejectsInconsistentAssignments) {
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.rank = 2;  // == ranks
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("assigns rank 2 of 2"), std::string::npos) << what;
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.shard_lo = 4;  // empty slice
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("invalid shard slice"), std::string::npos) << what;
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.device_hi = 9;  // beyond n_devices
    EXPECT_THROW(
        net::wire::decode_population(net::wire::encode_population(pop)),
        RuntimeError);
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.users.pop_back();  // 2 users for a 3-device slice
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("slice arrays"), std::string::npos) << what;
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.with_faults = false;  // but actions still present
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("with_faults is off"), std::string::npos) << what;
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.service.kind = static_cast<sim::SamplerSpec::Kind>(9);
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("unknown sampler kind 9"), std::string::npos) << what;
  }
  {
    net::wire::WorkerPopulation pop = sample_population();
    pop.actions[0].kind = static_cast<fault::FaultKind>(200);
    const std::string what = thrown_message(
        [&] { net::wire::decode_population(net::wire::encode_population(pop)); });
    EXPECT_NE(what.find("unknown fault kind 200"), std::string::npos) << what;
  }
  {
    std::vector<std::uint8_t> payload =
        net::wire::encode_population(sample_population());
    payload.push_back(0x00);
    const std::string what =
        thrown_message([&] { net::wire::decode_population(payload); });
    EXPECT_NE(what.find("trailing bytes"), std::string::npos) << what;
  }
}

}  // namespace

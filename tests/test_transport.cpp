// Cross-transport equivalence and process-backend robustness.
//
// Determinism contract #8 (docs/ARCHITECTURE.md): the transport choice can
// never change a single result byte.  The first half of this file proves it
// on every coupling path — fixed gamma, tracked gamma (EWMA replay), fault
// schedules with churn, multi-cluster topologies, and the closed-loop DTU
// whose epoch callbacks retune thresholds that must now cross a process
// boundary — comparing in-process results against forked-worker runs at
// several worker counts, including uneven shard slices.  Streamed .meclog
// files are compared byte for byte (with counter frames off: those carry
// wall-clock values and are the one deliberately nondeterministic frame).
//
// The second half exercises the failure modes: a worker that dies mid-run
// or stops responding must fail the run with a diagnostic naming the rank
// and its last completed barrier — never hang — and policies that cannot be
// mirrored into a worker process are rejected up front.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/policies.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec {
namespace {

/// Sets an environment variable for the enclosing scope and restores the
/// prior state on exit, so a failing test cannot leak robustness hooks into
/// the rest of the suite.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    if (const char* prev = std::getenv(name)) previous_ = prev;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_.has_value())
      ::setenv(name_, previous_->c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

std::vector<core::UserParams> mixed_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(4242);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

std::vector<double> mixed_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.25 * static_cast<double>(i % 9));
  return xs;
}

void expect_sketch_equal(const stats::LatencySketch& a,
                         const stats::LatencySketch& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (const double q : {0.25, 0.5, 0.95, 0.99})
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "quantile " << q;
}

void expect_result_identical(const sim::SimulationResult& a,
                             const sim::SimulationResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.mean_offload_fraction, b.mean_offload_fraction);
  ASSERT_EQ(a.cluster_utilization.size(), b.cluster_utilization.size());
  for (std::size_t i = 0; i < a.cluster_utilization.size(); ++i)
    EXPECT_EQ(a.cluster_utilization[i], b.cluster_utilization[i])
        << "cluster " << i;
  ASSERT_EQ(a.cluster_offloads.size(), b.cluster_offloads.size());
  for (std::size_t i = 0; i < a.cluster_offloads.size(); ++i)
    EXPECT_EQ(a.cluster_offloads[i], b.cluster_offloads[i]) << "cluster " << i;
  expect_sketch_equal(a.local_sojourn_percentiles, b.local_sojourn_percentiles);
  expect_sketch_equal(a.offload_delay_percentiles,
                      b.offload_delay_percentiles);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    const sim::DeviceStats& x = a.devices[i];
    const sim::DeviceStats& y = b.devices[i];
    EXPECT_EQ(x.arrivals, y.arrivals) << "device " << i;
    EXPECT_EQ(x.offloaded, y.offloaded) << "device " << i;
    EXPECT_EQ(x.local_completed, y.local_completed) << "device " << i;
    EXPECT_EQ(x.mean_queue_length, y.mean_queue_length) << "device " << i;
    EXPECT_EQ(x.mean_local_sojourn, y.mean_local_sojourn) << "device " << i;
    EXPECT_EQ(x.mean_offload_delay, y.mean_offload_delay) << "device " << i;
    EXPECT_EQ(x.energy_per_task, y.energy_per_task) << "device " << i;
    EXPECT_EQ(x.empirical_cost, y.empirical_cost) << "device " << i;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time) << "sample " << i;
    EXPECT_EQ(a.timeline[i].utilization_estimate,
              b.timeline[i].utilization_estimate)
        << "sample " << i;
    EXPECT_EQ(a.timeline[i].mean_queue_length, b.timeline[i].mean_queue_length)
        << "sample " << i;
    EXPECT_EQ(a.timeline[i].offloads_so_far, b.timeline[i].offloads_so_far)
        << "sample " << i;
    EXPECT_EQ(a.timeline[i].active_devices, b.timeline[i].active_devices)
        << "sample " << i;
  }
  EXPECT_EQ(a.faults.tasks_lost, b.faults.tasks_lost);
  EXPECT_EQ(a.faults.offloads_rejected, b.faults.offloads_rejected);
  EXPECT_EQ(a.faults.offloads_penalized, b.faults.offloads_penalized);
  EXPECT_EQ(a.faults.churn_joined, b.faults.churn_joined);
  EXPECT_EQ(a.faults.churn_departed, b.faults.churn_departed);
}

/// Runs the scenario once in process (shards = 4) and once per worker count
/// through the forked backend, expecting bit-identical results.  Worker
/// count 3 gives rank slices {0}, {1}, {2,3}: the uneven-partition case.
void expect_transport_invariant(sim::SimulationOptions options,
                                const std::shared_ptr<const fault::FaultSchedule>&
                                    schedule = nullptr) {
  const auto users = mixed_users(41);
  options.faults = schedule;
  options.shards = 4;
  options.transport = sim::TransportKind::kInProcess;
  sim::MecSimulation reference(users, 8.0, core::make_reciprocal_delay(),
                               options);
  const sim::SimulationResult base =
      reference.run_tro(mixed_thresholds(reference.total_devices()));
  for (const std::size_t w : {1u, 2u, 3u, 4u}) {
    options.transport = sim::TransportKind::kProcess;
    options.workers = w;
    sim::MecSimulation forked(users, 8.0, core::make_reciprocal_delay(),
                              options);
    const sim::SimulationResult r =
        forked.run_tro(mixed_thresholds(forked.total_devices()));
    SCOPED_TRACE("workers = " + std::to_string(w));
    expect_result_identical(base, r);
  }
}

TEST(TransportEquivalence, FixedGammaWithSampling) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 40.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  expect_transport_invariant(o);
}

TEST(TransportEquivalence, TrackedGammaWithSampling) {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 50.0;
  o.seed = 99;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 3.0;
  expect_transport_invariant(o);
}

TEST(TransportEquivalence, FaultsAndChurnAcrossClusters) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(10.0, 0.5, 1);  // cluster 1 browns out
  schedule->add_capacity_scale(24.0, 1.0, 1);
  schedule->add_outage(12.0, 18.0, fault::OutageMode::kReject);
  schedule->add_outage(26.0, 32.0, fault::OutageMode::kPenalty, 0.4);
  schedule->add_crash(8.0, 3);
  schedule->add_restart(20.0, 3);
  schedule->add_user_departure(22.0, 0.37);
  core::UserParams joiner;
  joiner.arrival_rate = 1.5;
  joiner.service_rate = 3.0;
  joiner.offload_latency = 0.2;
  joiner.energy_local = 1.0;
  joiner.energy_offload = 0.5;
  schedule->add_user_arrival(15.0, joiner);

  sim::SimulationOptions o;
  o.warmup = 3.0;
  o.horizon = 40.0;
  o.seed = 2024;
  o.utilization_ewma_tau = 8.0;
  o.initial_gamma = 0.2;
  o.sample_interval = 4.0;
  o.topology.clusters = 2;
  expect_transport_invariant(o, schedule);
}

TEST(TransportEquivalence, ClosedLoopDtuCrossesTheProcessBoundary) {
  // The closed loop is the hardest case for the process backend: every
  // epoch callback retunes MutableTroPolicy thresholds in the coordinator,
  // which must be re-mirrored into the workers before the next leg.
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 80.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.shards = 4;
  opt.transport = sim::TransportKind::kInProcess;
  const sim::ClosedLoopResult base =
      run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  for (const std::size_t w : {2u, 3u}) {
    opt.transport = sim::TransportKind::kProcess;
    opt.workers = w;
    const sim::ClosedLoopResult r =
        run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
    SCOPED_TRACE("workers = " + std::to_string(w));
    EXPECT_EQ(base.final_gamma_hat, r.final_gamma_hat);
    EXPECT_EQ(base.estimate_settled, r.estimate_settled);
    ASSERT_EQ(base.thresholds.size(), r.thresholds.size());
    for (std::size_t i = 0; i < base.thresholds.size(); ++i)
      EXPECT_EQ(base.thresholds[i], r.thresholds[i]) << "device " << i;
    ASSERT_EQ(base.epochs.size(), r.epochs.size());
    for (std::size_t i = 0; i < base.epochs.size(); ++i) {
      EXPECT_EQ(base.epochs[i].gamma_measured, r.epochs[i].gamma_measured)
          << "epoch " << i;
      EXPECT_EQ(base.epochs[i].gamma_hat, r.epochs[i].gamma_hat)
          << "epoch " << i;
      EXPECT_EQ(base.epochs[i].mean_threshold, r.epochs[i].mean_threshold)
          << "epoch " << i;
    }
    expect_result_identical(base.run, r.run);
  }
}

std::string test_scoped_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name = std::string(info->test_suite_name()) + "_" +
                           info->name() + "_" + suffix;
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST(TransportEquivalence, StreamedLogsAreByteIdentical) {
  const auto users = mixed_users(41);
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 40.0;
  o.seed = 7;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  o.sample_interval = 2.0;
  o.topology.clusters = 2;
  o.shards = 4;
  o.stream_counters = false;  // counter frames carry wall-clock values

  const std::string in_path = test_scoped_path("inproc.meclog");
  const std::string proc_path = test_scoped_path("process.meclog");
  o.transport = sim::TransportKind::kInProcess;
  o.stream_log = in_path;
  sim::MecSimulation a(users, 8.0, core::make_reciprocal_delay(), o);
  a.run_tro(mixed_thresholds(a.total_devices()));

  o.transport = sim::TransportKind::kProcess;
  o.workers = 2;
  o.stream_log = proc_path;
  sim::MecSimulation b(users, 8.0, core::make_reciprocal_delay(), o);
  b.run_tro(mixed_thresholds(b.total_devices()));

  const std::vector<char> in_bytes = slurp(in_path);
  const std::vector<char> proc_bytes = slurp(proc_path);
  ASSERT_FALSE(in_bytes.empty());
  EXPECT_EQ(in_bytes, proc_bytes);
  std::filesystem::remove(in_path);
  std::filesystem::remove(proc_path);
}

// --- robustness ------------------------------------------------------------

sim::SimulationOptions process_run_options() {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 30.0;
  o.seed = 5;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.0;  // plenty of barriers for the hooks to hit
  o.shards = 4;
  o.transport = sim::TransportKind::kProcess;
  o.workers = 2;
  return o;
}

TEST(ProcessTransportRobustness, WorkerCrashFailsWithRankAndBarrier) {
  ScopedEnv crash_rank("MEC_TEST_WORKER_CRASH_RANK", "1");
  ScopedEnv crash_barrier("MEC_TEST_WORKER_CRASH_BARRIER", "3");
  const auto users = mixed_users(41);
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                         process_run_options());
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "a crashed worker must fail the run";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("exit status 17"), std::string::npos) << what;
    EXPECT_NE(what.find("last completed barrier #2"), std::string::npos)
        << what;
    // The diagnostic names the frame the coordinator was still waiting for,
    // so a hung-vs-crashed worker is distinguishable from the message alone.
    EXPECT_NE(what.find("pending frame: barrier payload"), std::string::npos)
        << what;
  }
}

TEST(TransportTimeout, EnvOverrideIsValidatedLoudly) {
  // A malformed or out-of-range MEC_TRANSPORT_TIMEOUT_MS must throw naming
  // the variable and the accepted range — a typo'd deadline silently
  // falling back to 5 minutes would make stall tests pass vacuously.
  for (const char* bad : {"banana", "0", "-5", "1e3", "250ms", "86400001",
                          "999999999999999999999"}) {
    ScopedEnv env("MEC_TRANSPORT_TIMEOUT_MS", bad);
    try {
      parallel::resolve_transport_timeout_ms();
      FAIL() << "value '" << bad << "' must be rejected";
    } catch (const RuntimeError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("MEC_TRANSPORT_TIMEOUT_MS"), std::string::npos)
          << what;
      EXPECT_NE(what.find("[1, 86400000]"), std::string::npos) << what;
    }
  }
}

TEST(TransportTimeout, EnvOverrideAndFallbackResolve) {
  {
    ScopedEnv env("MEC_TRANSPORT_TIMEOUT_MS", "250");
    EXPECT_EQ(parallel::resolve_transport_timeout_ms(), 250);
    EXPECT_EQ(parallel::resolve_transport_timeout_ms(9000), 250);
  }
  {
    ScopedEnv env("MEC_TRANSPORT_TIMEOUT_MS", "86400000");
    EXPECT_EQ(parallel::resolve_transport_timeout_ms(),
              parallel::kMaxTransportTimeoutMs);
  }
  {
    // Unset and empty both mean "use the fallback", matching MEC_SHARDS.
    ScopedEnv env("MEC_TRANSPORT_TIMEOUT_MS", "");
    EXPECT_EQ(parallel::resolve_transport_timeout_ms(1234), 1234);
  }
}

TEST(ProcessTransportRobustness, WorkerStallFailsInsteadOfHanging) {
  ScopedEnv stall_rank("MEC_TEST_WORKER_STALL_RANK", "0");
  ScopedEnv stall_barrier("MEC_TEST_WORKER_STALL_BARRIER", "2");
  ScopedEnv timeout("MEC_TRANSPORT_TIMEOUT_MS", "500");
  const auto users = mixed_users(41);
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                         process_run_options());
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "a stalled worker must fail the run within the timeout";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("stopped responding"), std::string::npos) << what;
    EXPECT_NE(what.find("last completed barrier #1"), std::string::npos)
        << what;
  }
}

TEST(ProcessTransportRobustness, RejectsPoliciesWithoutTroThresholds) {
  // A DPO policy decides without a threshold; its state cannot be mirrored
  // into a worker process, so the run must be refused up front (before any
  // fork), not fail mid-run or silently diverge.
  const auto users = mixed_users(8);
  sim::SimulationOptions o;
  o.warmup = 1.0;
  o.horizon = 10.0;
  o.fixed_gamma = 0.25;
  o.shards = 2;
  o.transport = sim::TransportKind::kProcess;
  o.workers = 2;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  std::vector<std::unique_ptr<sim::OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(sim::make_dpo_policy(0.5));
  try {
    des.run(policies);
    FAIL() << "non-TRO policies must be rejected under transport=process";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transport=process"), std::string::npos) << what;
    EXPECT_NE(what.find("TRO"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mec

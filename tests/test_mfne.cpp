// Theorem 1: existence and uniqueness of the Mean-Field Nash Equilibrium.
#include "mec/core/mfne.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/cost_model.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

std::vector<UserParams> sampled(population::LoadRegime regime, std::size_t n,
                                std::uint64_t seed) {
  return population::sample_population(
             population::theoretical_scenario(regime, n), seed)
      .users;
}

TEST(Mfne, FixedPointPropertyHolds) {
  const auto users = sampled(population::LoadRegime::kAtService, 2000, 5);
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult r = solve_mfne(users, delay, 10.0);
  // gamma* = V(gamma*) up to the finite-population step granularity plus the
  // bisection tolerance.
  EXPECT_NEAR(r.best_response_value, r.gamma_star, 2e-3);
  EXPECT_GT(r.gamma_star, 0.0);
  EXPECT_LT(r.gamma_star, 1.0);
}

TEST(Mfne, EquilibriumLiesInThePaperBandForAllThreeRegimes) {
  // Table I reports 0.13 / 0.21 / 0.28; a 2000-user draw should land within
  // a few hundredths.
  const EdgeDelay delay = make_reciprocal_delay();
  const double lo = solve_mfne(sampled(population::LoadRegime::kBelowService,
                                       2000, 6),
                               delay, 10.0)
                        .gamma_star;
  const double mid = solve_mfne(sampled(population::LoadRegime::kAtService,
                                        2000, 6),
                                delay, 10.0)
                         .gamma_star;
  const double hi = solve_mfne(sampled(population::LoadRegime::kAboveService,
                                       2000, 6),
                               delay, 10.0)
                        .gamma_star;
  EXPECT_NEAR(lo, 0.13, 0.03);
  EXPECT_NEAR(mid, 0.21, 0.03);
  EXPECT_NEAR(hi, 0.28, 0.03);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
}

TEST(Mfne, NoOtherCrossingExists) {
  // Uniqueness: V(gamma) - gamma changes sign exactly once on a scan.
  const auto users = sampled(population::LoadRegime::kBelowService, 1000, 7);
  const EdgeDelay delay = make_reciprocal_delay();
  int sign_changes = 0;
  double prev = best_response(users, delay, 10.0, 0.0).utilization - 0.0;
  for (double gamma = 0.01; gamma <= 1.0; gamma += 0.01) {
    const double h =
        best_response(users, delay, 10.0, gamma).utilization - gamma;
    if ((h > 0) != (prev > 0)) ++sign_changes;
    prev = h;
  }
  EXPECT_EQ(sign_changes, 1);
}

TEST(Mfne, EquilibriumThresholdsReproduceTheEquilibriumUtilization) {
  const auto users = sampled(population::LoadRegime::kAtService, 1500, 8);
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult r = solve_mfne(users, delay, 10.0);
  std::vector<double> xs(r.thresholds.begin(), r.thresholds.end());
  EXPECT_NEAR(utilization_of_thresholds(users, xs, 10.0), r.gamma_star, 2e-3);
}

TEST(Mfne, NoUserBenefitsFromUnilateralDeviation) {
  // The Nash property, checked directly on a sample of users: at gamma*,
  // deviating from the Lemma-1 threshold cannot lower a user's own cost.
  const auto users = sampled(population::LoadRegime::kAboveService, 400, 9);
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult r = solve_mfne(users, delay, 10.0);
  const double g = delay(r.gamma_star);
  for (std::size_t n = 0; n < users.size(); n += 37) {
    const double own = tro_cost(users[n],
                                static_cast<double>(r.thresholds[n]), g);
    for (const double dev : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      EXPECT_LE(own, tro_cost(users[n], dev, g) + 1e-9)
          << "user " << n << " deviation " << dev;
    }
  }
}

TEST(Mfne, HigherCapacityLowersEquilibriumUtilization) {
  const auto users = sampled(population::LoadRegime::kAtService, 1000, 10);
  const EdgeDelay delay = make_reciprocal_delay();
  const double g10 = solve_mfne(users, delay, 10.0).gamma_star;
  const double g20 = solve_mfne(users, delay, 20.0).gamma_star;
  EXPECT_GT(g10, g20);
}

TEST(Mfne, SteeperEdgeDelayLowersEquilibriumUtilization) {
  const auto users = sampled(population::LoadRegime::kAtService, 1000, 11);
  const double flat =
      solve_mfne(users, make_linear_delay(0.5, 0.1), 10.0).gamma_star;
  const double steep =
      solve_mfne(users, make_linear_delay(0.5, 20.0), 10.0).gamma_star;
  EXPECT_GE(flat, steep);
}

TEST(Mfne, DegeneratePopulationThatNeverOffloadsYieldsZero) {
  // Offloading is strictly dominated: enormous latency, tiny arrival rate.
  std::vector<UserParams> users(50);
  for (auto& u : users) {
    u.arrival_rate = 0.05;
    u.service_rate = 5.0;  // theta = 0.01
    u.offload_latency = 1000.0;
    u.energy_local = 0.0;
    u.energy_offload = 1.0;
  }
  const MfneResult r =
      solve_mfne(users, make_constant_delay(0.0), 10.0);
  // f(1|theta) = 0.01 > beta is false here (beta = 0.05*1001 = 50), so the
  // threshold is large but alpha is *tiny*; gamma* ~ 0.
  EXPECT_LT(r.gamma_star, 1e-3);
}

TEST(Mfne, ThrowsWhenCapacityCannotAbsorbTheLoad) {
  std::vector<UserParams> users(10);
  for (auto& u : users) {
    u.arrival_rate = 5.0;
    u.service_rate = 1.0;
    u.offload_latency = 0.0;
    u.energy_local = 3.0;
    u.energy_offload = 0.0;
  }
  // V(0) = mean(a)/c = 5/2 > 1.
  EXPECT_THROW(solve_mfne(users, make_constant_delay(0.0), 2.0),
               ContractViolation);
}

TEST(Mfne, RespectsToleranceOption) {
  const auto users = sampled(population::LoadRegime::kBelowService, 500, 12);
  const EdgeDelay delay = make_reciprocal_delay();
  MfneOptions opt;
  opt.tolerance = 1e-4;
  const MfneResult coarse = solve_mfne(users, delay, 10.0, opt);
  opt.tolerance = 1e-12;
  const MfneResult fine = solve_mfne(users, delay, 10.0, opt);
  EXPECT_NEAR(coarse.gamma_star, fine.gamma_star, 2e-4);
  EXPECT_LT(coarse.iterations, fine.iterations);
}

TEST(Mfne, ReportsConvergenceAtNormalTolerances) {
  const auto users = sampled(population::LoadRegime::kAtService, 500, 13);
  const MfneResult r = solve_mfne(users, make_reciprocal_delay(), 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, MfneOptions{}.max_iterations);
}

TEST(Mfne, FlagsNonConvergenceWhenTheIterationGuardCutsOff) {
  // A tolerance far below one ulp of gamma* can never be met: the bracket
  // stops shrinking and the max_iterations guard must end the bisection
  // with converged == false rather than spin forever.
  const auto users = sampled(population::LoadRegime::kAtService, 500, 13);
  MfneOptions opt;
  opt.tolerance = 1e-30;
  opt.max_iterations = 40;
  const MfneResult r = solve_mfne(users, make_reciprocal_delay(), 10.0, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, opt.max_iterations);
  // The midpoint of the last bracket is still a usable estimate.
  EXPECT_GT(r.gamma_star, 0.0);
  EXPECT_LT(r.gamma_star, 1.0);
}

}  // namespace
}  // namespace mec::core

#include "mec/core/best_response.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mec/common/error.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace mec::core {
namespace {

std::vector<UserParams> small_population(std::size_t n = 500) {
  auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, n);
  return population::sample_population(cfg, 31).users;
}

TEST(BestResponseTest, UtilizationIsNonIncreasingInGamma) {
  // Lemma 2 / Theorem 1: V(gamma) is non-increasing.
  const auto users = small_population();
  const EdgeDelay delay = make_reciprocal_delay();
  double prev = 2.0;
  for (double gamma = 0.0; gamma <= 1.0; gamma += 0.05) {
    const double v = best_response(users, delay, 10.0, gamma).utilization;
    EXPECT_LE(v, prev + 1e-12) << "gamma=" << gamma;
    prev = v;
  }
}

TEST(BestResponseTest, ThresholdsAreNonDecreasingInGamma) {
  const auto users = small_population(100);
  const EdgeDelay delay = make_reciprocal_delay();
  auto prev = best_response(users, delay, 10.0, 0.0).thresholds;
  for (double gamma = 0.1; gamma <= 1.0; gamma += 0.1) {
    const auto cur = best_response(users, delay, 10.0, gamma).thresholds;
    for (std::size_t n = 0; n < cur.size(); ++n)
      EXPECT_GE(cur[n], prev[n]) << "user " << n << " gamma=" << gamma;
    prev = cur;
  }
}

TEST(BestResponseTest, VAtZeroIsBelowOneWithPaperCapacity) {
  const auto users = small_population();
  EXPECT_LT(best_response(users, make_reciprocal_delay(), 10.0, 0.0)
                .utilization,
            1.0);
}

TEST(BestResponseTest, UtilizationOfThresholdsMatchesBestResponse) {
  const auto users = small_population(200);
  const EdgeDelay delay = make_reciprocal_delay();
  const BestResponse br = best_response(users, delay, 10.0, 0.3);
  std::vector<double> as_double(br.thresholds.begin(), br.thresholds.end());
  EXPECT_NEAR(utilization_of_thresholds(users, as_double, 10.0),
              br.utilization, 1e-12);
}

TEST(BestResponseTest, AllZeroThresholdsGiveMeanArrivalOverCapacity) {
  const auto users = small_population(200);
  const std::vector<double> zeros(users.size(), 0.0);
  double mean_a = 0.0;
  for (const auto& u : users) mean_a += u.arrival_rate;
  mean_a /= static_cast<double>(users.size());
  EXPECT_NEAR(utilization_of_thresholds(users, zeros, 10.0), mean_a / 10.0,
              1e-12);
}

TEST(BestResponseTest, HugeThresholdsForLightUsersGiveResidualUtilization) {
  // With overloaded users (theta > 1) even infinite thresholds leave
  // alpha >= 1 - 1/theta, so utilization cannot drop to zero.
  std::vector<UserParams> users(10);
  for (auto& u : users) {
    u.arrival_rate = 4.0;
    u.service_rate = 2.0;  // theta = 2
  }
  const std::vector<double> big(users.size(), 500.0);
  const double v = utilization_of_thresholds(users, big, 10.0);
  EXPECT_NEAR(v, 4.0 * 0.5 / 10.0, 1e-6);  // alpha -> 1 - 1/2
}

TEST(BestResponseTest, AverageCostDropsWhenUsersPlayBestResponse) {
  const auto users = small_population(300);
  const EdgeDelay delay = make_reciprocal_delay();
  const double gamma = 0.3;
  const BestResponse br = best_response(users, delay, 10.0, gamma);
  std::vector<double> best(br.thresholds.begin(), br.thresholds.end());
  const std::vector<double> zeros(users.size(), 0.0);
  const std::vector<double> fives(users.size(), 5.0);
  const double cost_best = average_cost(users, best, delay, gamma);
  EXPECT_LE(cost_best, average_cost(users, zeros, delay, gamma) + 1e-9);
  EXPECT_LE(cost_best, average_cost(users, fives, delay, gamma) + 1e-9);
}

TEST(BestResponseTest, CapacityOnlyScalesUtilization) {
  const auto users = small_population(100);
  const EdgeDelay delay = make_reciprocal_delay();
  const BestResponse br = best_response(users, delay, 10.0, 0.2);
  std::vector<double> xs(br.thresholds.begin(), br.thresholds.end());
  const double v10 = utilization_of_thresholds(users, xs, 10.0);
  const double v20 = utilization_of_thresholds(users, xs, 20.0);
  EXPECT_NEAR(v10, 2.0 * v20, 1e-12);
}

TEST(BestResponseTest, RejectsInvalidInput) {
  const auto users = small_population(10);
  const EdgeDelay delay = make_reciprocal_delay();
  EXPECT_THROW(best_response({}, delay, 10.0, 0.5), ContractViolation);
  EXPECT_THROW(best_response(users, delay, 0.0, 0.5), ContractViolation);
  EXPECT_THROW(best_response(users, delay, 10.0, 1.5), ContractViolation);
  const std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(utilization_of_thresholds(users, wrong_size, 10.0),
               ContractViolation);
}

}  // namespace
}  // namespace mec::core

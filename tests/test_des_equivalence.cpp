// Golden-trace equivalence for the DES hot-path overhaul.
//
// The two-gear event queue, the ring-buffer task FIFO, the sealed TRO
// arrival fast path, and workspace reuse are pure performance changes: the
// simulator must pop the identical event sequence and therefore produce
// bit-identical metrics.  The hexfloat constants below were captured from
// the pre-overhaul simulator (std::priority_queue + per-device deque,
// virtual dispatch on every arrival); every comparison is exact — no
// tolerances anywhere in this file.
#include "mec/sim/mec_simulation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/des.hpp"

namespace mec::sim {
namespace {

// The fixed heterogeneous population shared by all golden scenarios.
std::vector<core::UserParams> golden_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(424242);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

SimulationOptions scenario_a_options() {
  SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 31337;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.5;
  return o;
}

std::vector<double> scenario_a_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.5 * static_cast<double>(i % 7));
  return xs;
}

SimulationOptions scenario_b_options() {
  SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 80.0;
  o.seed = 99;
  o.utilization_ewma_tau = 5.0;
  o.initial_gamma = 0.3;
  return o;
}

void expect_bitwise_equal(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.mean_offload_fraction, b.mean_offload_fraction);
  EXPECT_EQ(a.local_sojourn_percentiles.count(),
            b.local_sojourn_percentiles.count());
  EXPECT_EQ(a.local_sojourn_percentiles.p50(),
            b.local_sojourn_percentiles.p50());
  EXPECT_EQ(a.offload_delay_percentiles.p99(),
            b.offload_delay_percentiles.p99());
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].arrivals, b.devices[i].arrivals) << "device " << i;
    EXPECT_EQ(a.devices[i].offloaded, b.devices[i].offloaded) << "device " << i;
    EXPECT_EQ(a.devices[i].local_completed, b.devices[i].local_completed)
        << "device " << i;
    EXPECT_EQ(a.devices[i].mean_queue_length, b.devices[i].mean_queue_length)
        << "device " << i;
    EXPECT_EQ(a.devices[i].mean_local_sojourn, b.devices[i].mean_local_sojourn)
        << "device " << i;
    EXPECT_EQ(a.devices[i].mean_offload_delay, b.devices[i].mean_offload_delay)
        << "device " << i;
    EXPECT_EQ(a.devices[i].empirical_cost, b.devices[i].empirical_cost)
        << "device " << i;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].utilization_estimate,
              b.timeline[i].utilization_estimate);
    EXPECT_EQ(a.timeline[i].mean_queue_length, b.timeline[i].mean_queue_length);
    EXPECT_EQ(a.timeline[i].offloads_so_far, b.timeline[i].offloads_so_far);
  }
}

TEST(GoldenTrace, FixedGammaMixedThresholdsWithSampling) {
  const auto users = golden_users(40);
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(),
                  scenario_a_options());
  const SimulationResult r = s.run_tro(scenario_a_thresholds(users.size()));
  EXPECT_EQ(r.total_events, 8754u);
  EXPECT_EQ(r.measured_utilization, 0x1.551eb851eb852p-4);
  EXPECT_EQ(r.mean_cost, 0x1.a949dce689f98p+0);
  EXPECT_EQ(r.mean_queue_length, 0x1.b6c7910db35f5p-2);
  EXPECT_EQ(r.mean_offload_fraction, 0x1.7e7abbf6a030bp-2);
  const DeviceStats& d7 = r.devices[7];  // threshold 0: pure offloader
  EXPECT_EQ(d7.arrivals, 141u);
  EXPECT_EQ(d7.offloaded, 141u);
  EXPECT_EQ(d7.local_completed, 0u);
  EXPECT_EQ(d7.mean_queue_length, 0.0);
  EXPECT_EQ(d7.mean_local_sojourn, 0.0);
  EXPECT_EQ(d7.mean_offload_delay, 0x1.b07bf525f70c1p+0);
  EXPECT_EQ(d7.energy_per_task, 0x1.9c10b47aaa3ddp-2);
  EXPECT_EQ(d7.empirical_cost, 0x1.0bc0112250cd9p+1);
  ASSERT_EQ(r.timeline.size(), 26u);
  EXPECT_EQ(r.timeline.back().time, 0x1.04p+6);  // 65.0 = warmup + horizon
  EXPECT_EQ(r.timeline.back().utilization_estimate, 0x1p-2);
  EXPECT_EQ(r.timeline.back().mean_queue_length, 0x1.ccccccccccccdp-2);
  EXPECT_EQ(r.timeline.back().offloads_so_far, 1599u);
}

TEST(GoldenTrace, OnlineEwmaGammaHomogeneousFractionalThreshold) {
  const auto users = golden_users(40);
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(),
                  scenario_b_options());
  const SimulationResult r = s.run_tro(std::vector<double>(users.size(), 1.75));
  EXPECT_EQ(r.total_events, 11497u);
  EXPECT_EQ(r.measured_utilization, 0x1.ab851eb851eb8p-5);
  EXPECT_EQ(r.mean_cost, 0x1.811e34317c14p+0);
  EXPECT_EQ(r.mean_queue_length, 0x1.132c4df8412fep-1);
  EXPECT_EQ(r.mean_offload_fraction, 0x1.a23b4b244b725p-3);
  const DeviceStats& d7 = r.devices[7];
  EXPECT_EQ(d7.arrivals, 205u);
  EXPECT_EQ(d7.offloaded, 55u);
  EXPECT_EQ(d7.local_completed, 151u);
  EXPECT_EQ(d7.mean_queue_length, 0x1.58ddb17af037ap-1);
  EXPECT_EQ(d7.mean_local_sojourn, 0x1.6d6bc1250551p-2);
  EXPECT_EQ(d7.mean_offload_delay, 0x1.921d6ade446e8p+0);
  EXPECT_EQ(d7.energy_per_task, 0x1.be8c9cde3bd54p-1);
  EXPECT_EQ(d7.empirical_cost, 0x1.93c78f57e91e3p+0);
}

TEST(GoldenTrace, DpoPoliciesOnTheGenericVirtualPath) {
  const auto users = golden_users(40);
  SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 50.0;
  o.seed = 5;
  o.latency = deterministic_latency();
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(), o);
  std::vector<double> rhos;
  for (std::size_t i = 0; i < users.size(); ++i)
    rhos.push_back(0.1 + 0.02 * static_cast<double>(i % 10));
  const SimulationResult r = s.run_dpo(rhos);
  EXPECT_EQ(r.total_events, 6622u);
  EXPECT_EQ(r.measured_utilization, 0x1.5916872b020c5p-5);
  EXPECT_EQ(r.mean_cost, 0x1.b54a91cbe50ap+0);
  EXPECT_EQ(r.mean_queue_length, 0x1.03acf3fee5504p+0);
  EXPECT_EQ(r.mean_offload_fraction, 0x1.8ef1ca8a2a9f5p-3);
  const DeviceStats& d7 = r.devices[7];
  EXPECT_EQ(d7.arrivals, 139u);
  EXPECT_EQ(d7.offloaded, 31u);
  EXPECT_EQ(d7.local_completed, 105u);
  EXPECT_EQ(d7.mean_queue_length, 0x1.1ea5532a93dd7p+0);
  EXPECT_EQ(d7.mean_local_sojourn, 0x1.076f1d6702d7ap-1);
  EXPECT_EQ(d7.mean_offload_delay, 0x1.7791115f1ffadp+0);
  EXPECT_EQ(d7.energy_per_task, 0x1.cd6e1e98a04d2p-1);
  EXPECT_EQ(d7.empirical_cost, 0x1.b332232937deap+0);
}

// Forwards to a real TRO policy but hides tro_threshold(), forcing the
// simulator onto the generic virtual-dispatch path.  The fast path promises
// to draw exactly the RNG sequence offload() draws, so the two paths must
// agree bit-for-bit.
class HiddenTroPolicy final : public OffloadPolicy {
 public:
  explicit HiddenTroPolicy(double threshold)
      : inner_(make_tro_policy(threshold)) {}
  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override {
    return inner_->offload(queue_length, rng);
  }
  std::string describe() const override { return "hidden-tro"; }

 private:
  std::unique_ptr<OffloadPolicy> inner_;
};

TEST(FastPathEquivalence, SealedTroPathMatchesGenericDispatchBitForBit) {
  const auto users = golden_users(40);
  const auto xs = scenario_a_thresholds(users.size());
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(),
                  scenario_a_options());
  std::vector<std::unique_ptr<OffloadPolicy>> hidden;
  for (const double x : xs) hidden.push_back(std::make_unique<HiddenTroPolicy>(x));
  expect_bitwise_equal(s.run_tro(xs), s.run(hidden));
}

TEST(FastPathEquivalence, PolicyObjectsExposingThresholdsMatchRunTro) {
  // make_tro_policy exposes tro_threshold(), so run() seals onto the fast
  // path itself; it must agree with the policy-free run_tro entry point.
  const auto users = golden_users(40);
  const auto xs = scenario_a_thresholds(users.size());
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(),
                  scenario_a_options());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (const double x : xs) policies.push_back(make_tro_policy(x));
  expect_bitwise_equal(s.run_tro(xs), s.run(policies));
}

TEST(WorkspaceReuse, ReusedWorkspaceReproducesFreshRunsBitForBit) {
  // Scenario B exercises the EWMA estimator and the RNG-stream snapshot:
  // run 1 sizes the workspace and caches the split streams, runs 2 and 3
  // restore them.  All runs — with or without a workspace — must agree.
  const auto users = golden_users(40);
  const std::vector<double> xs(users.size(), 1.75);
  MecSimulation s(users, 8.0, core::make_reciprocal_delay(),
                  scenario_b_options());
  const SimulationResult fresh = s.run_tro(xs);
  SimWorkspace ws;
  const SimulationResult first = s.run_tro(xs, ws);
  const SimulationResult second = s.run_tro(xs, ws);
  const SimulationResult third = s.run_tro(xs, ws);
  expect_bitwise_equal(fresh, first);
  expect_bitwise_equal(fresh, second);
  expect_bitwise_equal(fresh, third);
}

TEST(WorkspaceReuse, WorkspaceSurvivesPopulationSizeChanges) {
  // The same workspace driven by differently-sized simulations must resize
  // and still reproduce the fresh-run results exactly.
  SimWorkspace ws;
  for (const std::size_t n : {60u, 15u, 90u}) {
    const auto users = golden_users(n);
    const std::vector<double> xs(n, 2.0);
    SimulationOptions o;
    o.warmup = 1.0;
    o.horizon = 30.0;
    o.seed = 7 + n;
    o.fixed_gamma = 0.2;
    MecSimulation s(users, 8.0, core::make_reciprocal_delay(), o);
    expect_bitwise_equal(s.run_tro(xs), s.run_tro(xs, ws));
  }
}

// --- EventQueue order equivalence against a reference model ----------------

using RefNode = std::tuple<double, std::uint64_t, std::uint32_t, int>;

void check_pop(EventQueue& q, std::set<RefNode>& ref) {
  ASSERT_FALSE(ref.empty());
  const RefNode expected = *ref.begin();
  ref.erase(ref.begin());
  EXPECT_EQ(q.next_time(), std::get<0>(expected));
  const Event e = q.pop();
  ASSERT_EQ(e.time, std::get<0>(expected));
  ASSERT_EQ(e.seq, std::get<1>(expected));
  ASSERT_EQ(e.device, std::get<2>(expected));
  ASSERT_EQ(static_cast<int>(e.kind), std::get<3>(expected));
}

TEST(EventQueueEquivalence, MatchesReferenceOrderAcrossGearSwitches) {
  // Drive the queue through every regime — heap gear, the calendar switch,
  // growth retunes, overflow-tier hits, in-window (side-heap) pushes, the
  // shrink retune, and the fall back to the heap — checking each pop
  // against an ordered (time, seq) reference model.
  EventQueue q;
  std::set<RefNode> ref;
  random::Xoshiro256 rng(2718281828u);
  std::uint64_t seq = 0;
  double clock = 0.0;

  const auto push = [&](double t, EventKind k, std::uint32_t dev) {
    q.push(t, k, dev);
    ref.emplace(t, seq++, dev, static_cast<int>(k));
  };

  // Grow well past the calendar switch threshold (16384).
  for (std::uint32_t i = 0; i < 30000; ++i)
    push(random::exponential(rng, 0.5), EventKind::kArrival, i % 1000);

  // Steady churn with a net-growth phase (two pushes per pop, growing the
  // population past 4x the size at the calendar switch) to force a growth
  // retune, mixing short delays (side heap), typical delays, same-time
  // ties, and far-future outliers (overflow tier).
  for (int step = 0; step < 120000 && !ref.empty(); ++step) {
    check_pop(q, ref);
    clock = std::get<0>(*ref.begin());
    const int fanout = step < 40000 ? 2 : 1;
    for (int j = 0; j < fanout; ++j) {
      const double u = random::uniform(rng, 0.0, 1.0);
      double t;
      if (u < 0.05) {
        t = clock;  // exact tie: FIFO order must hold
      } else if (u < 0.15) {
        t = clock + random::exponential(rng, 5000.0);  // inside the window
      } else if (u < 0.97) {
        t = clock + random::exponential(rng, 0.5);
      } else {
        t = clock + random::uniform(rng, 1e4, 1e7);  // overflow tier
      }
      push(t, static_cast<EventKind>(step % 3), static_cast<std::uint32_t>(
                                                    (step + 7 * j) % 1000));
    }
    if (step == 60000) {
      // Burst of simultaneous events deep in calendar gear.
      for (int j = 0; j < 500; ++j)
        push(clock + 1.0, EventKind::kLocalDeparture,
             static_cast<std::uint32_t>(j));
    }
  }

  // Drain completely: crosses the shrink retune and the heap-gear exit.
  while (!ref.empty()) check_pop(q, ref);
  EXPECT_TRUE(q.empty());

  // clear() keeps capacity but restarts the sequence: reuse must still
  // order correctly and report fresh seq numbers.
  q.clear();
  seq = 0;
  for (std::uint32_t i = 0; i < 5000; ++i)
    push(random::exponential(rng, 1.0), EventKind::kArrival, i % 64);
  while (!ref.empty()) check_pop(q, ref);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueEquivalence, AllSimultaneousEventsStayFifoAtScale) {
  // A degenerate spread (every event at the same instant) cannot be
  // separated by time buckets; the queue must still pop in insertion order
  // above the calendar switch threshold.
  EventQueue q;
  const std::uint32_t n = 20000;
  for (std::uint32_t i = 0; i < n; ++i)
    q.push(3.5, EventKind::kArrival, i % 997);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Event e = q.pop();
    ASSERT_EQ(e.seq, i);
    ASSERT_EQ(e.device, i % 997);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEquivalence, ScheduledCountTracksPushesAcrossClear) {
  EventQueue q;
  q.push(1.0, EventKind::kArrival, 0);
  q.push(2.0, EventKind::kArrival, 1);
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.clear();
  EXPECT_EQ(q.scheduled_count(), 0u);
  q.push(1.0, EventKind::kArrival, 2);
  EXPECT_EQ(q.scheduled_count(), 1u);
  EXPECT_EQ(q.pop().seq, 0u);
}

}  // namespace
}  // namespace mec::sim

// Planner (congestion-priced) thresholds and the price of anarchy.
#include "mec/core/social_optimum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

std::vector<UserParams> sampled(population::LoadRegime regime, std::size_t n) {
  return population::sample_population(
             population::theoretical_scenario(regime, n), 321)
      .users;
}

TEST(EdgeDelayDerivative, MatchesAnalyticDerivativeOfReciprocal) {
  // d/dg [1/(1.1 - g)] = 1/(1.1 - g)^2.
  const EdgeDelay delay = make_reciprocal_delay(1.1);
  for (const double gamma : {0.1, 0.4, 0.8}) {
    const double expected = 1.0 / ((1.1 - gamma) * (1.1 - gamma));
    EXPECT_NEAR(edge_delay_derivative(delay, gamma), expected, 1e-4);
  }
}

TEST(EdgeDelayDerivative, HandlesBoundariesAndConstants) {
  const EdgeDelay constant = make_constant_delay(2.0);
  EXPECT_NEAR(edge_delay_derivative(constant, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(edge_delay_derivative(constant, 1.0), 0.0, 1e-12);
  const EdgeDelay linear = make_linear_delay(1.0, 3.0);
  EXPECT_NEAR(edge_delay_derivative(linear, 0.0), 3.0, 1e-6);
  EXPECT_NEAR(edge_delay_derivative(linear, 1.0), 3.0, 1e-6);
}

TEST(SocialOptimumTest, NeverCostsMoreThanTheNashEquilibrium) {
  for (const auto regime : {population::LoadRegime::kBelowService,
                            population::LoadRegime::kAtService,
                            population::LoadRegime::kAboveService}) {
    const auto users = sampled(regime, 800);
    const EdgeDelay delay = make_reciprocal_delay();
    const MfneResult nash = solve_mfne(users, delay, 10.0);
    std::vector<double> nash_xs(nash.thresholds.begin(),
                                nash.thresholds.end());
    const double nash_cost =
        average_cost(users, nash_xs, delay,
                     utilization_of_thresholds(users, nash_xs, 10.0));
    const SocialOptimum so = solve_social_optimum(users, delay, 10.0);
    EXPECT_LE(so.average_cost, nash_cost + 1e-12)
        << population::to_string(regime);
  }
}

TEST(SocialOptimumTest, PlannerOffloadsLessThanNash) {
  // Internalizing the congestion externality makes offloading look more
  // expensive, so planner thresholds are (weakly) higher and utilization
  // (weakly) lower.
  const auto users = sampled(population::LoadRegime::kAboveService, 800);
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult nash = solve_mfne(users, delay, 10.0);
  const SocialOptimum so = solve_social_optimum(users, delay, 10.0);
  EXPECT_LE(so.gamma, nash.gamma_star + 1e-9);
  double nash_sum = 0.0, so_sum = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n) {
    nash_sum += static_cast<double>(nash.thresholds[n]);
    so_sum += static_cast<double>(so.thresholds[n]);
  }
  EXPECT_GE(so_sum, nash_sum - 1e-9);
}

TEST(SocialOptimumTest, ConstantDelayHasNoExternality) {
  // With g' = 0 the congestion price vanishes and the planner's point is
  // exactly the Nash point.
  const auto users = sampled(population::LoadRegime::kAtService, 300);
  const EdgeDelay delay = make_constant_delay(1.5);
  const MfneResult nash = solve_mfne(users, delay, 10.0);
  const SocialOptimum so = solve_social_optimum(users, delay, 10.0);
  EXPECT_DOUBLE_EQ(so.congestion_price, 0.0);
  for (std::size_t n = 0; n < users.size(); ++n)
    EXPECT_EQ(so.thresholds[n], nash.thresholds[n]);
}

TEST(SocialOptimumTest, ConvergesAndReportsConsistentFields) {
  const auto users = sampled(population::LoadRegime::kAtService, 500);
  const EdgeDelay delay = make_reciprocal_delay();
  const SocialOptimum so = solve_social_optimum(users, delay, 10.0);
  EXPECT_TRUE(so.converged);
  EXPECT_EQ(so.thresholds.size(), users.size());
  std::vector<double> xs(so.thresholds.begin(), so.thresholds.end());
  EXPECT_NEAR(so.gamma, utilization_of_thresholds(users, xs, 10.0), 1e-9);
  EXPECT_NEAR(so.average_cost, average_cost(users, xs, delay, so.gamma),
              1e-9);
}

TEST(PriceOfAnarchy, IsAtLeastOneAndModestForThePaperSettings) {
  const auto users = sampled(population::LoadRegime::kAtService, 800);
  const double poa = price_of_anarchy(users, make_reciprocal_delay(), 10.0);
  EXPECT_GE(poa, 1.0);
  // The reciprocal delay is mild at the Table-I equilibria; selfish play
  // should be near-efficient.
  EXPECT_LT(poa, 1.2);
}

TEST(PriceOfAnarchy, GrowsWithSteeperCongestion) {
  const auto users = sampled(population::LoadRegime::kAboveService, 600);
  const double mild =
      price_of_anarchy(users, make_linear_delay(0.5, 1.0), 10.0);
  const double steep =
      price_of_anarchy(users, make_linear_delay(0.5, 40.0), 10.0);
  EXPECT_GE(steep, mild - 1e-9);
}

TEST(SocialOptimumTest, RejectsBadOptions) {
  const auto users = sampled(population::LoadRegime::kAtService, 10);
  const EdgeDelay delay = make_reciprocal_delay();
  SocialOptimumOptions opt;
  opt.damping = 0.0;
  EXPECT_THROW(solve_social_optimum(users, delay, 10.0, opt),
               ContractViolation);
  opt = {};
  opt.tolerance = -1.0;
  EXPECT_THROW(solve_social_optimum(users, delay, 10.0, opt),
               ContractViolation);
}

}  // namespace
}  // namespace mec::core

// Theorem 2: the DTU Algorithm (Algorithm 1) converges to the unique MFNE,
// synchronously and asynchronously, from any starting thresholds.
#include "mec/core/dtu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

std::vector<UserParams> sampled(population::LoadRegime regime, std::size_t n,
                                std::uint64_t seed = 17) {
  return population::sample_population(
             population::theoretical_scenario(regime, n), seed)
      .users;
}

class DtuRegimeTest
    : public ::testing::TestWithParam<population::LoadRegime> {};

TEST_P(DtuRegimeTest, ConvergesToTheMfneOfTheSamePopulation) {
  const auto users = sampled(GetParam(), 2000);
  const EdgeDelay delay = make_reciprocal_delay();
  const double c = 10.0;
  const MfneResult mfne = solve_mfne(users, delay, c);

  AnalyticUtilization source(users, c);
  DtuOptions opt;
  opt.eta0 = 0.1;
  opt.epsilon = 0.005;
  const DtuResult r = run_dtu(users, delay, source, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.final_gamma_hat, mfne.gamma_star, opt.epsilon + opt.eta0 / 2);
  // Tighter: the true utilization of the final thresholds is near gamma*.
  EXPECT_NEAR(r.final_gamma, mfne.gamma_star, 0.02);
}

TEST_P(DtuRegimeTest, PaperIterationBudgetIsEnough) {
  // Fig. 5: convergence within ~20 iterations at the paper's settings.
  const auto users = sampled(GetParam(), 1000);
  AnalyticUtilization source(users, 10.0);
  const DtuResult r =
      run_dtu(users, make_reciprocal_delay(), source, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 40);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DtuRegimeTest,
    ::testing::Values(population::LoadRegime::kBelowService,
                      population::LoadRegime::kAtService,
                      population::LoadRegime::kAboveService));

TEST(Dtu, EstimateMovesByExactlyEtaEachIteration) {
  const auto users = sampled(population::LoadRegime::kAtService, 500);
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.eta0 = 0.25;
  const DtuResult r = run_dtu(users, make_reciprocal_delay(), source, opt);
  ASSERT_GE(r.trace.size(), 2u);
  double prev_hat = 0.0;  // gamma_hat_0
  double prev_eta = opt.eta0;
  for (const DtuIterate& it : r.trace) {
    const double step = std::abs(it.gamma_hat - prev_hat);
    // Step is eta_{t-1} (or 0 on exact hit, or clipped at the boundary).
    EXPECT_TRUE(step <= prev_eta + 1e-12) << "t=" << it.t;
    prev_hat = it.gamma_hat;
    prev_eta = it.eta;
  }
}

TEST(Dtu, StepSizeIsNonIncreasingAndShrinksHarmonically) {
  const auto users = sampled(population::LoadRegime::kBelowService, 500);
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.eta0 = 0.2;
  opt.epsilon = 0.002;
  const DtuResult r = run_dtu(users, make_reciprocal_delay(), source, opt);
  double prev = opt.eta0;
  for (const DtuIterate& it : r.trace) {
    EXPECT_LE(it.eta, prev + 1e-15);
    prev = it.eta;
  }
  // The final step honours the stopping rule: eta_final <= epsilon, and by
  // the harmonic rule it equals eta0 / L for an integer L.
  EXPECT_LE(r.trace.back().eta, opt.epsilon + 1e-15);
  const double l_est = opt.eta0 / r.trace.back().eta;
  EXPECT_NEAR(l_est, std::round(l_est), 1e-6);
}

TEST(Dtu, BisectionPropertyOfTheEstimate) {
  // Theorem 2's core argument: gamma_hat moves monotonically towards gamma*
  // until it crosses, then turns around.
  const auto users = sampled(population::LoadRegime::kAtService, 1500);
  const EdgeDelay delay = make_reciprocal_delay();
  const double gamma_star = solve_mfne(users, delay, 10.0).gamma_star;
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.eta0 = 0.07;
  const DtuResult r = run_dtu(users, delay, source, opt);

  double prev_hat = 0.0;
  for (const DtuIterate& it : r.trace) {
    if (prev_hat < gamma_star - opt.eta0 && it.gamma_hat <= prev_hat)
      ADD_FAILURE() << "estimate moved away below gamma* at t=" << it.t;
    if (prev_hat > gamma_star + opt.eta0 && it.gamma_hat >= prev_hat)
      ADD_FAILURE() << "estimate moved away above gamma* at t=" << it.t;
    prev_hat = it.gamma_hat;
  }
}

TEST(Dtu, ConvergesFromHighInitialThresholds) {
  const auto users = sampled(population::LoadRegime::kAtService, 800);
  const EdgeDelay delay = make_reciprocal_delay();
  const double gamma_star = solve_mfne(users, delay, 10.0).gamma_star;
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.initial_thresholds.assign(users.size(), 25.0);  // start barely offloading
  const DtuResult r = run_dtu(users, delay, source, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.final_gamma, gamma_star, 0.05);
}

TEST(Dtu, AsynchronousUpdatesStillConverge) {
  // Section IV-B: each user updates with probability 0.8 per iteration.
  const auto users = sampled(population::LoadRegime::kAboveService, 1500);
  const EdgeDelay delay = make_reciprocal_delay();
  const double gamma_star = solve_mfne(users, delay, 10.0).gamma_star;
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.update_gate = make_bernoulli_gate(0.8, /*seed=*/5);
  const DtuResult r = run_dtu(users, delay, source, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.final_gamma, gamma_star, 0.05);
}

TEST(Dtu, GateZeroFreezesThresholds) {
  const auto users = sampled(population::LoadRegime::kAtService, 100);
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.update_gate = [](std::size_t, int) { return false; };
  opt.initial_thresholds.assign(users.size(), 3.0);
  opt.max_iterations = 50;
  const DtuResult r = run_dtu(users, make_reciprocal_delay(), source, opt);
  for (const double x : r.thresholds) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(Dtu, BernoulliGateIsDeterministicAndCalibrated) {
  const UpdateGate gate = make_bernoulli_gate(0.8, 7);
  const UpdateGate gate_same = make_bernoulli_gate(0.8, 7);
  int fires = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const bool a = gate(static_cast<std::size_t>(i), i % 97);
    EXPECT_EQ(a, gate_same(static_cast<std::size_t>(i), i % 97));
    fires += a;
  }
  EXPECT_NEAR(static_cast<double>(fires) / trials, 0.8, 0.02);
}

TEST(Dtu, TraceRecordsMatchFinalState) {
  const auto users = sampled(population::LoadRegime::kBelowService, 300);
  AnalyticUtilization source(users, 10.0);
  const DtuResult r =
      run_dtu(users, make_reciprocal_delay(), source, {});
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.iterations, static_cast<int>(r.trace.size()));
  EXPECT_DOUBLE_EQ(r.trace.back().gamma_hat, r.final_gamma_hat);
  for (std::size_t i = 0; i < r.trace.size(); ++i)
    EXPECT_EQ(r.trace[i].t, static_cast<int>(i) + 1);
}

TEST(Dtu, MaxIterationsGuardStopsUnconvergedRuns) {
  const auto users = sampled(population::LoadRegime::kAtService, 200);
  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.epsilon = 1e-6;   // very tight
  opt.max_iterations = 5;  // far too few
  const DtuResult r = run_dtu(users, make_reciprocal_delay(), source, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 5);
}

TEST(Dtu, RejectsInvalidOptions) {
  const auto users = sampled(population::LoadRegime::kAtService, 10);
  AnalyticUtilization source(users, 10.0);
  const EdgeDelay delay = make_reciprocal_delay();
  DtuOptions opt;
  opt.eta0 = 0.0;
  EXPECT_THROW(run_dtu(users, delay, source, opt), ContractViolation);
  opt = {};
  opt.epsilon = 1.0;
  EXPECT_THROW(run_dtu(users, delay, source, opt), ContractViolation);
  opt = {};
  opt.initial_thresholds = {1.0};  // wrong size
  EXPECT_THROW(run_dtu(users, delay, source, opt), ContractViolation);
  EXPECT_THROW(make_bernoulli_gate(1.5), ContractViolation);
}

TEST(Dtu, TraceCostsConvergeToTheEquilibriumCost) {
  const auto users = sampled(population::LoadRegime::kAtService, 1000);
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult mfne = solve_mfne(users, delay, 10.0);
  std::vector<double> eq_xs(mfne.thresholds.begin(), mfne.thresholds.end());
  const double eq_cost = average_cost(users, eq_xs, delay, mfne.gamma_star);

  AnalyticUtilization source(users, 10.0);
  DtuOptions opt;
  opt.epsilon = 0.005;
  const DtuResult r = run_dtu(users, delay, source, opt);
  ASSERT_FALSE(r.trace.empty());
  for (const DtuIterate& it : r.trace) EXPECT_GT(it.mean_cost, 0.0);
  EXPECT_NEAR(r.trace.back().mean_cost, eq_cost, 0.02 * eq_cost);
}

namespace {

/// Wraps a source with deterministic bounded "measurement" noise, emulating
/// a finite-window estimate of gamma_t.
class NoisyUtilization final : public UtilizationSource {
 public:
  NoisyUtilization(UtilizationSource& inner, double amplitude)
      : inner_(inner), amplitude_(amplitude) {}
  double utilization(std::span<const double> thresholds) override {
    ++calls_;
    // Deterministic pseudo-noise in [-amplitude, amplitude].
    const double noise =
        amplitude_ * std::sin(static_cast<double>(calls_) * 12.9898);
    return std::max(0.0, inner_.utilization(thresholds) + noise);
  }

 private:
  UtilizationSource& inner_;
  double amplitude_;
  int calls_ = 0;
};

}  // namespace

TEST(Dtu, ToleratesBoundedMeasurementNoise) {
  // The sign-step only consumes the *direction* of gamma_t - gamma_hat, so
  // noise below the step size cannot derail the trajectory; the estimate
  // still lands within epsilon + noise of the equilibrium.
  const auto users = sampled(population::LoadRegime::kAtService, 1000);
  const EdgeDelay delay = make_reciprocal_delay();
  const double star = solve_mfne(users, delay, 10.0).gamma_star;
  AnalyticUtilization exact(users, 10.0);
  NoisyUtilization noisy(exact, 0.02);
  DtuOptions opt;
  opt.eta0 = 0.1;
  opt.epsilon = 0.01;
  const DtuResult r = run_dtu(users, delay, noisy, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.final_gamma_hat, star, 0.05);
}

TEST(AnalyticUtilizationTest, MatchesDirectFormula) {
  const auto users = sampled(population::LoadRegime::kAtService, 50);
  AnalyticUtilization source(users, 10.0);
  const std::vector<double> xs(users.size(), 2.0);
  EXPECT_NEAR(source.utilization(xs),
              utilization_of_thresholds(users, xs, 10.0), 1e-12);
}

}  // namespace
}  // namespace mec::core

// Lemma 1: the closed-form best threshold.  Validated three ways: against
// the f(m|theta) closed form, against the defining inequalities, and against
// an independent brute-force grid search over the actual Eq.-(1) cost.
#include "mec/core/threshold_oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::core {
namespace {

TEST(FFunction, BaseCases) {
  for (const double theta : {0.3, 1.0, 2.7}) {
    EXPECT_DOUBLE_EQ(f_recursive(0, theta), 0.0);
    EXPECT_NEAR(f_recursive(1, theta), theta, 1e-12);
    // f(2) = 2*theta + theta^2.
    EXPECT_NEAR(f_recursive(2, theta), 2.0 * theta + theta * theta, 1e-12);
  }
}

TEST(FFunction, RecursiveMatchesClosedForm) {
  for (const double theta : {0.2, 0.5, 0.9, 1.0, 1.2, 3.0, 6.0}) {
    for (const std::int64_t m : {0, 1, 2, 5, 10, 25}) {
      const double fr = f_recursive(m, theta);
      const double fc = f_closed_form(m, theta);
      EXPECT_NEAR(fr, fc, 1e-8 * std::max(1.0, std::abs(fc)))
          << "theta=" << theta << " m=" << m;
    }
  }
}

TEST(FFunction, ClosedFormIsStableNearThetaOne) {
  // Regression for catastrophic cancellation: theta^{m+1} - (m+1)theta + m
  // collapses to O(m^2 (1-theta)^2) through cancellation of O(m) terms, so
  // the raw quotient loses ~2 digits per decade of |1-theta|.  The fallback
  // band must hand off to the recurrence smoothly: closed form and
  // recurrence agree to ~1e-9 relative everywhere in [0.99, 1.01],
  // including both sides of the 1e-3 cutoff and theta == 1 exactly.
  const double thetas[] = {0.99,        0.995,       1.0 - 2e-3,
                           1.0 - 1e-3,  1.0 - 5e-4,  1.0 - 1e-4,
                           1.0 - 1e-6,  1.0 - 1e-9,  1.0,
                           1.0 + 1e-9,  1.0 + 1e-6,  1.0 + 1e-4,
                           1.0 + 5e-4,  1.0 + 1e-3,  1.0 + 2e-3,
                           1.005,       1.01};
  for (const double theta : thetas) {
    for (const std::int64_t m : {1, 2, 5, 17, 100, 1000}) {
      const double fr = f_recursive(m, theta);
      const double fc = f_closed_form(m, theta);
      EXPECT_NEAR(fc, fr, 1e-9 * std::max(1.0, std::abs(fr)))
          << "theta=" << theta << " m=" << m;
    }
  }
  // Exact at theta == 1: f(m|1) = m(m+1)/2.
  EXPECT_DOUBLE_EQ(f_closed_form(1000, 1.0), 1000.0 * 1001.0 / 2.0);
}

TEST(FFunction, IsStrictlyIncreasingInM) {
  for (const double theta : {0.1, 1.0, 4.0}) {
    double prev = f_recursive(0, theta);
    for (std::int64_t m = 1; m <= 30; ++m) {
      const double f = f_recursive(m, theta);
      EXPECT_GT(f, prev) << "theta=" << theta << " m=" << m;
      prev = f;
    }
  }
}

TEST(FFunction, DominatesLinearLowerBound) {
  // f(m|theta) >= m * theta (each of the m terms is >= theta... the smallest
  // term is theta^1 with coefficient 1; actually sum >= m*theta when theta>=1
  // and >= theta otherwise; the paper uses f(m) >= m*theta for theta >= 1).
  for (const double theta : {1.0, 1.5, 3.0}) {
    for (const std::int64_t m : {1, 5, 20}) {
      EXPECT_GE(f_recursive(m, theta),
                static_cast<double>(m) * theta - 1e-12);
    }
  }
}

TEST(FFunction, RejectsInvalidArguments) {
  EXPECT_THROW(f_recursive(-1, 1.0), ContractViolation);
  EXPECT_THROW(f_recursive(1, 0.0), ContractViolation);
  EXPECT_THROW(f_recursive(2'000'000, 1.0), ContractViolation);
}

TEST(BestThresholdForPrice, ZeroForNegativeOrSmallPrice) {
  EXPECT_EQ(best_threshold_for_price(-5.0, 1.0), 0);
  EXPECT_EQ(best_threshold_for_price(0.0, 1.0), 0);
  EXPECT_EQ(best_threshold_for_price(0.99, 1.0), 0);  // f(1|1) = 1
}

TEST(BestThresholdForPrice, SatisfiesDefiningInequalities) {
  random::Xoshiro256 rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const double theta = random::uniform(rng, 0.05, 6.0);
    const double beta = random::uniform(rng, -5.0, 400.0);
    const std::int64_t m = best_threshold_for_price(beta, theta);
    ASSERT_GE(m, 0);
    if (m == 0) {
      EXPECT_LT(beta, f_recursive(1, theta));
    } else {
      EXPECT_LE(f_recursive(m, theta), beta + 1e-9);
      EXPECT_LT(beta, f_recursive(m + 1, theta));
    }
  }
}

TEST(BestThresholdForPrice, BoundaryIsExactlyAtF) {
  const double theta = 1.0;  // f(m|1) = m(m+1)/2
  EXPECT_EQ(best_threshold_for_price(2.999999, theta), 1);  // f(2) = 3
  EXPECT_EQ(best_threshold_for_price(3.0, theta), 2);
  EXPECT_EQ(best_threshold_for_price(5.999999, theta), 2);  // f(3) = 6
  EXPECT_EQ(best_threshold_for_price(6.0, theta), 3);
}

TEST(BestThresholdForPrice, MonotoneInPrice) {
  for (const double theta : {0.4, 1.0, 2.5}) {
    std::int64_t prev = 0;
    for (double beta = 0.0; beta < 100.0; beta += 0.5) {
      const std::int64_t m = best_threshold_for_price(beta, theta);
      EXPECT_GE(m, prev);
      prev = m;
    }
  }
}

TEST(BestThreshold, MonotoneNonDecreasingInEdgeDelay) {
  // Lemma 1 + increasing g: more congested edge => higher local threshold.
  UserParams u;
  u.arrival_rate = 3.0;
  u.service_rate = 2.0;
  u.offload_latency = 0.5;
  u.energy_local = 1.0;
  u.energy_offload = 0.5;
  std::int64_t prev = 0;
  for (double g = 0.0; g <= 10.0; g += 0.25) {
    const std::int64_t m = best_threshold(u, g);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

// The decisive test: the Lemma-1 oracle must beat (or tie) every point of a
// fine grid search over the true Eq.-(1) cost, over randomized users.
class OracleVsGridTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleVsGridTest, OracleCostNeverExceedsGridOptimum) {
  random::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    UserParams u;
    u.arrival_rate = random::uniform(rng, 0.2, 8.0);
    u.service_rate = random::uniform(rng, 1.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.0, 5.0);
    u.energy_local = random::uniform(rng, 0.0, 3.0);
    u.energy_offload = random::uniform(rng, 0.0, 1.0);
    u.weight = random::uniform(rng, 0.5, 2.0);
    const double g = random::uniform(rng, 0.0, 10.0);

    const auto m = static_cast<double>(best_threshold(u, g));
    const double oracle_cost = tro_cost(u, m, g);
    const double grid_x = grid_search_threshold(u, g, 60.0, 0.05);
    const double grid_cost = tro_cost(u, grid_x, g);
    EXPECT_LE(oracle_cost, grid_cost + 1e-9)
        << "a=" << u.arrival_rate << " s=" << u.service_rate << " g=" << g
        << " oracle_m=" << m << " grid_x=" << grid_x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleVsGridTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(GridSearch, RejectsInvalidArguments) {
  UserParams u;
  EXPECT_THROW(grid_search_threshold(u, 0.5, -1.0, 0.1), ContractViolation);
  EXPECT_THROW(grid_search_threshold(u, 0.5, 1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace mec::core

// The discrete-event simulator is validated against exact queueing theory:
// M/M/1 (local-only), the TRO closed forms (Eq. 7-8), and the analytic
// utilization map used by the mean-field layer.
#include "mec/sim/mec_simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/queueing/mm1.hpp"
#include "mec/queueing/threshold_queue.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/des.hpp"

namespace mec::sim {
namespace {

std::vector<core::UserParams> homogeneous(std::size_t n, double a, double s,
                                          double tau = 0.5) {
  std::vector<core::UserParams> users(n);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = tau;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  return users;
}

SimulationOptions long_run(std::uint64_t seed = 3) {
  SimulationOptions o;
  o.warmup = 50.0;
  o.horizon = 2000.0;
  o.seed = seed;
  o.fixed_gamma = 0.2;
  return o;
}

TEST(EventQueueTest, OrdersByTimeThenInsertion) {
  EventQueue q;
  q.push(2.0, EventKind::kArrival, 1);
  q.push(1.0, EventKind::kLocalDeparture, 2);
  q.push(1.0, EventKind::kArrival, 3);  // same time, inserted later
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().device, 2u);  // first inserted at t=1
  EXPECT_EQ(q.pop().device, 3u);
  EXPECT_EQ(q.pop().device, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RejectsNonFiniteTimes) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, EventKind::kArrival, 0), ContractViolation);
  EXPECT_THROW(q.push(std::nan(""), EventKind::kArrival, 0),
               ContractViolation);
}

TEST(Policies, TroDecidesByQueueLength) {
  random::Xoshiro256 rng(1);
  const auto policy = make_tro_policy(2.0);  // integer threshold
  EXPECT_FALSE(policy->offload(0, rng));
  EXPECT_FALSE(policy->offload(1, rng));
  EXPECT_TRUE(policy->offload(2, rng));  // frac = 0 => always offload at 2
  EXPECT_TRUE(policy->offload(5, rng));
}

TEST(Policies, TroRandomizesAtTheBoundaryState) {
  random::Xoshiro256 rng(2);
  const auto policy = make_tro_policy(2.25);  // local w.p. 0.25 at q=2
  int offloads = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) offloads += policy->offload(2, rng);
  EXPECT_NEAR(static_cast<double>(offloads) / trials, 0.75, 0.01);
  EXPECT_FALSE(policy->offload(1, rng));
  EXPECT_TRUE(policy->offload(3, rng));
}

TEST(Policies, DpoIgnoresQueueLength) {
  random::Xoshiro256 rng(3);
  const auto policy = make_dpo_policy(0.4);
  int offloads = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    offloads += policy->offload(static_cast<std::uint64_t>(i % 7), rng);
  EXPECT_NEAR(static_cast<double>(offloads) / trials, 0.4, 0.01);
}

TEST(Policies, DegenerateAndDescriptions) {
  random::Xoshiro256 rng(4);
  EXPECT_FALSE(make_local_only_policy()->offload(100, rng));
  EXPECT_TRUE(make_offload_all_policy()->offload(0, rng));
  EXPECT_NE(make_tro_policy(2.5)->describe().find("2.5"), std::string::npos);
  EXPECT_THROW(make_tro_policy(-1.0), ContractViolation);
  EXPECT_THROW(make_dpo_policy(1.5), ContractViolation);
}

TEST(Des, LocalOnlyReproducesMm1MeanQueue) {
  const auto users = homogeneous(200, 1.0, 2.0);
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), long_run());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(make_local_only_policy());
  const SimulationResult r = sim.run(policies);
  const auto mm1 = queueing::mm1_metrics(1.0, 2.0);
  EXPECT_NEAR(r.mean_queue_length, mm1.mean_in_system, 0.03);
  EXPECT_DOUBLE_EQ(r.measured_utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_offload_fraction, 0.0);
  // Mean sojourn ~ W = 1/(mu - lambda) = 1.
  double sojourn = r.device_mean(
      [](const DeviceStats& d) { return d.mean_local_sojourn; });
  EXPECT_NEAR(sojourn, mm1.mean_sojourn, 0.05);
}

TEST(Des, OffloadAllMatchesOfferedLoadOverCapacity) {
  const auto users = homogeneous(200, 2.0, 1.0);
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), long_run());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(make_offload_all_policy());
  const SimulationResult r = sim.run(policies);
  EXPECT_NEAR(r.measured_utilization, 2.0 / 10.0, 0.01);
  EXPECT_DOUBLE_EQ(r.mean_offload_fraction, 1.0);
  EXPECT_NEAR(r.mean_queue_length, 0.0, 1e-12);
}

class DesTroValidationTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DesTroValidationTest, MatchesClosedFormQueueAndAlpha) {
  const auto [a, s, x] = GetParam();
  const auto users = homogeneous(300, a, s);
  MecSimulation sim(users, 100.0, core::make_reciprocal_delay(), long_run(7));
  const std::vector<double> xs(users.size(), x);
  const SimulationResult r = sim.run_tro(xs);
  const auto exact = queueing::tro_metrics(a / s, x);
  EXPECT_NEAR(r.mean_queue_length, exact.mean_queue_length,
              0.02 + 0.02 * exact.mean_queue_length)
      << "a=" << a << " s=" << s << " x=" << x;
  EXPECT_NEAR(r.mean_offload_fraction, exact.offload_probability, 0.015)
      << "a=" << a << " s=" << s << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DesTroValidationTest,
    ::testing::Values(std::make_tuple(1.0, 2.0, 1.0),
                      std::make_tuple(1.0, 2.0, 2.5),
                      std::make_tuple(2.0, 2.0, 3.0),
                      std::make_tuple(4.0, 2.0, 2.25),
                      std::make_tuple(0.5, 3.0, 0.5),
                      std::make_tuple(3.0, 1.5, 5.0)));

TEST(Des, MatchesAnalyticUtilizationOnHeterogeneousThresholds) {
  // Mixed population with varied thresholds: DES utilization must agree
  // with the closed-form Eq.-(6) map.
  std::vector<core::UserParams> users;
  std::vector<double> xs;
  random::Xoshiro256 rng(5);
  for (int i = 0; i < 400; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 5.0);
    u.service_rate = random::uniform(rng, 1.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.0, 1.0);
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
    users.push_back(u);
    xs.push_back(std::floor(random::uniform(rng, 0.0, 6.0)));
  }
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), long_run(11));
  const SimulationResult r = sim.run_tro(xs);
  EXPECT_NEAR(r.measured_utilization,
              core::utilization_of_thresholds(users, xs, 10.0), 0.01);
}

TEST(Des, IsDeterministicPerSeed) {
  const auto users = homogeneous(50, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  SimulationOptions o;
  o.horizon = 100.0;
  o.seed = 42;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r1 = sim.run_tro(xs);
  const SimulationResult r2 = sim.run_tro(xs);
  EXPECT_EQ(r1.total_events, r2.total_events);
  EXPECT_DOUBLE_EQ(r1.mean_cost, r2.mean_cost);
  o.seed = 43;
  MecSimulation sim2(users, 10.0, core::make_reciprocal_delay(), o);
  EXPECT_NE(sim2.run_tro(xs).total_events, r1.total_events);
}

TEST(Des, EmpiricalServiceSamplerPreservesTheMeanRate) {
  // With the empirical sampler, each device's mean service time must still
  // be 1/s_n; M/M/1-style load then gives a similar (not identical) queue.
  const auto dataset = random::synthetic_yolo_processing_times();
  random::Xoshiro256 rng(6);
  core::UserParams u;
  u.service_rate = 4.0;
  const ServiceSampler sampler = empirical_service(dataset);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += sampler(rng, u);
  EXPECT_NEAR(acc / n, 1.0 / u.service_rate, 2e-3);
}

TEST(Des, EmpiricalLatencySamplerPreservesTheMeanLatency) {
  const auto dataset = random::synthetic_wifi_offload_latencies();
  random::Xoshiro256 rng(7);
  core::UserParams u;
  u.offload_latency = 2.5;
  const LatencySampler sampler = empirical_latency(dataset);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += sampler(rng, u);
  EXPECT_NEAR(acc / n, 2.5, 0.02);
}

TEST(Des, DeterministicSamplersAreExact) {
  random::Xoshiro256 rng(8);
  core::UserParams u;
  u.service_rate = 5.0;
  u.offload_latency = 1.25;
  EXPECT_DOUBLE_EQ(deterministic_service()(rng, u), 0.2);
  EXPECT_DOUBLE_EQ(deterministic_latency()(rng, u), 1.25);
}

TEST(Des, FixedGammaControlsTheEdgeDelaySeenByTasks) {
  const auto users = homogeneous(100, 2.0, 1.0, /*tau=*/0.0);
  const std::vector<double> zeros(users.size(), 0.0);  // offload everything
  SimulationOptions o;
  o.horizon = 300.0;
  o.warmup = 10.0;
  o.seed = 9;
  o.latency = deterministic_latency();
  o.fixed_gamma = 0.0;
  MecSimulation sim_lo(users, 10.0, core::make_reciprocal_delay(), o);
  o.fixed_gamma = 0.9;
  MecSimulation sim_hi(users, 10.0, core::make_reciprocal_delay(), o);
  const double d_lo = sim_lo.run_tro(zeros).device_mean(
      [](const DeviceStats& d) { return d.mean_offload_delay; });
  const double d_hi = sim_hi.run_tro(zeros).device_mean(
      [](const DeviceStats& d) { return d.mean_offload_delay; });
  EXPECT_NEAR(d_lo, 1.0 / 1.1, 1e-9);
  EXPECT_NEAR(d_hi, 1.0 / 0.2, 1e-9);
}

TEST(Des, EwmaFeedbackTracksTheOfferedLoad) {
  // Without fixed_gamma, the online estimate should settle near the true
  // offered utilization.
  const auto users = homogeneous(200, 2.0, 1.0, /*tau=*/0.1);
  const std::vector<double> zeros(users.size(), 0.0);
  SimulationOptions o;
  o.horizon = 500.0;
  o.warmup = 50.0;
  o.seed = 10;
  o.latency = deterministic_latency();
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r = sim.run_tro(zeros);
  // gamma = 0.2 => g = 1/0.9; measured per-offload delay = tau + g(gamma_t)
  // with gamma_t fluctuating around 0.2.
  const double d = r.device_mean(
      [](const DeviceStats& dd) { return dd.mean_offload_delay; });
  EXPECT_NEAR(d, 0.1 + 1.0 / 0.9, 0.03);
}

TEST(Des, EmpiricalCostMatchesAnalyticCostForExponentialService) {
  const auto users = homogeneous(300, 1.5, 2.5, /*tau=*/0.5);
  const std::vector<double> xs(users.size(), 2.0);
  SimulationOptions o = long_run(12);
  o.fixed_gamma = 0.3;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r = sim.run_tro(xs);
  const double analytic = core::average_cost(
      users, xs, core::make_reciprocal_delay(), 0.3);
  EXPECT_NEAR(r.mean_cost, analytic, 0.05);
}

TEST(DesUtilizationSourceTest, ApproximatesTheAnalyticMap) {
  const auto users = homogeneous(200, 2.0, 2.0, /*tau=*/0.3);
  SimulationOptions o;
  o.horizon = 400.0;
  o.warmup = 40.0;
  DesUtilizationSource source(users, 10.0, core::make_reciprocal_delay(), o);
  const std::vector<double> xs(users.size(), 1.0);
  const double measured = source.utilization(xs);
  EXPECT_NEAR(measured, core::utilization_of_thresholds(users, xs, 10.0),
              0.01);
  EXPECT_GT(source.last_result().total_events, 0u);
}

TEST(DesUtilizationSourceTest, LastResultRequiresACall) {
  const auto users = homogeneous(10, 1.0, 2.0);
  DesUtilizationSource source(users, 10.0, core::make_reciprocal_delay());
  EXPECT_THROW(source.last_result(), ContractViolation);
}

TEST(Des, SojournPercentilesMatchMm1Theory) {
  // M/M/1 sojourn is Exp(mu - lambda): p50 = ln2/(mu-lambda),
  // p95 = ln20/(mu-lambda), p99 = ln100/(mu-lambda).
  const auto users = homogeneous(300, 1.0, 2.0);
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), long_run(21));
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(make_local_only_policy());
  const SimulationResult r = sim.run(policies);
  const double rate = 2.0 - 1.0;
  EXPECT_GT(r.local_sojourn_percentiles.count(), 100000u);
  EXPECT_NEAR(r.local_sojourn_percentiles.p50(), std::log(2.0) / rate, 0.03);
  EXPECT_NEAR(r.local_sojourn_percentiles.p95(), std::log(20.0) / rate, 0.12);
  EXPECT_NEAR(r.local_sojourn_percentiles.p99(), std::log(100.0) / rate, 0.3);
}

TEST(Des, OffloadDelayPercentilesReflectLatencyPlusEdge) {
  // Deterministic latency + fixed gamma: every offload delay is identical,
  // so all percentiles collapse to tau + g(gamma).
  const auto users = homogeneous(50, 2.0, 1.0, /*tau=*/0.7);
  SimulationOptions o;
  o.horizon = 100.0;
  o.warmup = 5.0;
  o.seed = 22;
  o.latency = deterministic_latency();
  o.fixed_gamma = 0.1;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r =
      sim.run_tro(std::vector<double>(users.size(), 0.0));
  const double expected = 0.7 + 1.0 / 1.0;  // tau + 1/(1.1-0.1)
  EXPECT_NEAR(r.offload_delay_percentiles.p50(), expected, 1e-9);
  EXPECT_NEAR(r.offload_delay_percentiles.p99(), expected, 1e-9);
}

TEST(Des, TimelineSamplingRecordsTheTrajectory) {
  const auto users = homogeneous(100, 1.0, 2.0, /*tau=*/0.2);
  SimulationOptions o;
  o.horizon = 90.0;
  o.warmup = 10.0;
  o.seed = 33;
  o.sample_interval = 1.0;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r =
      sim.run_tro(std::vector<double>(users.size(), 2.0));
  // Samples at t = 1..100 (warm-up + horizon).
  ASSERT_EQ(r.timeline.size(), 100u);
  EXPECT_DOUBLE_EQ(r.timeline.front().time, 1.0);
  EXPECT_DOUBLE_EQ(r.timeline.back().time, 100.0);
  // Queue lengths and estimates stay in sane ranges; offload counter is
  // non-decreasing once measuring starts.
  std::uint64_t prev = 0;
  for (const auto& p : r.timeline) {
    EXPECT_GE(p.mean_queue_length, 0.0);
    EXPECT_LE(p.mean_queue_length, 3.0);  // threshold 2 caps queue at 3
    EXPECT_GE(p.utilization_estimate, 0.0);
    EXPECT_LE(p.utilization_estimate, 1.0);
    EXPECT_GE(p.offloads_so_far, prev);
    prev = p.offloads_so_far;
  }
  // After warm-up the EWMA estimate should hover near the analytic value.
  const double expected = core::utilization_of_thresholds(
      users, std::vector<double>(users.size(), 2.0), 10.0);
  const auto& last = r.timeline.back();
  EXPECT_NEAR(last.utilization_estimate, expected, 0.1);
}

TEST(Des, WarmupSojournsAreClippedToTheMeasurementWindow) {
  // Regression for the warm-up measurement bias: with an overloaded local
  // queue (a=2, s=1) and a 100 s warm-up, the FIFO backlog at the window
  // start is ~100 tasks deep, so tasks departing inside a 10 s measurement
  // window arrived ~50 s before it.  Counting their full sojourn inflates
  // the mean to ~50; clipping at the window start bounds every recorded
  // sojourn (and hence the mean and all percentiles) by the horizon.
  const auto users = homogeneous(20, 2.0, 1.0);
  SimulationOptions o;
  o.warmup = 100.0;
  o.horizon = 10.0;
  o.seed = 99;
  o.fixed_gamma = 0.2;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(make_local_only_policy());
  const SimulationResult r = sim.run(policies);
  const double sojourn = r.device_mean(
      [](const DeviceStats& d) { return d.mean_local_sojourn; });
  EXPECT_GT(sojourn, 0.0);
  EXPECT_LE(sojourn, o.horizon);  // pre-fix: ~50 (warm-up backlog leaks in)
  EXPECT_LE(r.local_sojourn_percentiles.p99(), o.horizon);
}

TEST(Des, WarmupClipDoesNotDisturbSteadyStateMeasurements) {
  // In a stable queue the clip only touches the few tasks straddling the
  // window boundary; the M/M/1 sojourn must still come out right with a
  // long warm-up in front of the window.
  const auto users = homogeneous(200, 1.0, 2.0);
  SimulationOptions o = long_run();
  o.warmup = 200.0;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(make_local_only_policy());
  const SimulationResult r = sim.run(policies);
  const double sojourn = r.device_mean(
      [](const DeviceStats& d) { return d.mean_local_sojourn; });
  EXPECT_NEAR(sojourn, queueing::mm1_metrics(1.0, 2.0).mean_sojourn, 0.05);
}

TEST(Des, TimelineIsInvariantToTheSampleInterval) {
  // TimelinePoint records left limits at the scheduled sample time, so
  // sampling must neither perturb the event stream nor depend on which
  // event flushes the sample: the run sampled every 2 s must agree exactly
  // with the even-time points of the run sampled every 1 s.
  const auto users = homogeneous(80, 1.2, 2.0, /*tau=*/0.3);
  SimulationOptions o;
  o.warmup = 10.0;
  o.horizon = 70.0;
  o.seed = 44;
  o.sample_interval = 1.0;
  MecSimulation fine(users, 10.0, core::make_reciprocal_delay(), o);
  o.sample_interval = 2.0;
  MecSimulation coarse(users, 10.0, core::make_reciprocal_delay(), o);
  const std::vector<double> xs(users.size(), 2.0);
  const SimulationResult rf = fine.run_tro(xs);
  const SimulationResult rc = coarse.run_tro(xs);
  EXPECT_EQ(rf.total_events, rc.total_events);
  EXPECT_DOUBLE_EQ(rf.mean_cost, rc.mean_cost);
  ASSERT_EQ(rf.timeline.size(), 80u);
  ASSERT_EQ(rc.timeline.size(), 40u);
  for (std::size_t i = 0; i < rc.timeline.size(); ++i) {
    const TimelinePoint& c = rc.timeline[i];
    const TimelinePoint& f = rf.timeline[2 * i + 1];
    ASSERT_DOUBLE_EQ(c.time, f.time);
    EXPECT_DOUBLE_EQ(c.utilization_estimate, f.utilization_estimate);
    EXPECT_DOUBLE_EQ(c.mean_queue_length, f.mean_queue_length);
    EXPECT_EQ(c.offloads_so_far, f.offloads_so_far);
  }
}

TEST(Des, TimelineOffloadCounterStartsAtWarmupAndEndsAtTheTotal) {
  const auto users = homogeneous(60, 2.0, 1.5, /*tau=*/0.2);
  SimulationOptions o;
  o.warmup = 10.0;
  o.horizon = 50.0;
  o.seed = 55;
  o.sample_interval = 1.0;
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const SimulationResult r =
      sim.run_tro(std::vector<double>(users.size(), 1.0));
  std::uint64_t total_offloaded = 0;
  for (const DeviceStats& d : r.devices) total_offloaded += d.offloaded;
  ASSERT_FALSE(r.timeline.empty());
  for (const TimelinePoint& p : r.timeline) {
    if (p.time <= o.warmup) {
      EXPECT_EQ(p.offloads_so_far, 0u) << "t=" << p.time;
    }
  }
  // The final sample is the left limit at t_end; no event lands on the
  // sampled instant (arrival times are continuous), so it equals the total.
  EXPECT_EQ(r.timeline.back().offloads_so_far, total_offloaded);
  EXPECT_GT(total_offloaded, 0u);
}

TEST(Des, TimelineDisabledByDefault) {
  const auto users = homogeneous(20, 1.0, 2.0);
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay());
  const SimulationResult r =
      sim.run_tro(std::vector<double>(users.size(), 1.0));
  EXPECT_TRUE(r.timeline.empty());
}

TEST(Des, RejectsInvalidConfiguration) {
  const auto users = homogeneous(5, 1.0, 2.0);
  SimulationOptions o;
  o.horizon = -1.0;
  EXPECT_THROW(
      MecSimulation(users, 10.0, core::make_reciprocal_delay(), o),
      ContractViolation);
  o = {};
  EXPECT_THROW(MecSimulation({}, 10.0, core::make_reciprocal_delay(), o),
               ContractViolation);
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay());
  const std::vector<double> wrong(2, 1.0);
  EXPECT_THROW(sim.run_tro(wrong), ContractViolation);
}

}  // namespace
}  // namespace mec::sim

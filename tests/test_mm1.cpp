#include "mec/queueing/mm1.hpp"

#include <gtest/gtest.h>

#include "mec/common/error.hpp"

namespace mec::queueing {
namespace {

TEST(Mm1, ClassicHalfLoadValues) {
  const Mm1Metrics m = mm1_metrics(1.0, 2.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_in_system, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_in_queue, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_sojourn, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.5);
}

TEST(Mm1, SatisfiesLittlesLaw) {
  for (const double lambda : {0.1, 0.5, 1.7, 2.9}) {
    const Mm1Metrics m = mm1_metrics(lambda, 3.0);
    EXPECT_NEAR(m.mean_in_system, lambda * m.mean_sojourn, 1e-12);
    EXPECT_NEAR(m.mean_in_queue, lambda * m.mean_wait, 1e-12);
  }
}

TEST(Mm1, QueueDecompositionHolds) {
  // L = Lq + rho.
  const Mm1Metrics m = mm1_metrics(2.0, 2.5);
  EXPECT_NEAR(m.mean_in_system, m.mean_in_queue + m.utilization, 1e-12);
}

TEST(Mm1, ZeroArrivalGivesEmptySystem) {
  const Mm1Metrics m = mm1_metrics(0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_in_system, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.0);
}

TEST(Mm1, RejectsUnstableOrInvalidInput) {
  EXPECT_THROW(mm1_metrics(2.0, 2.0), ContractViolation);
  EXPECT_THROW(mm1_metrics(3.0, 2.0), ContractViolation);
  EXPECT_THROW(mm1_metrics(-1.0, 2.0), ContractViolation);
  EXPECT_THROW(mm1_metrics(1.0, 0.0), ContractViolation);
}

TEST(Mm1, StateProbabilitiesAreGeometricAndSumToOne) {
  const double lambda = 1.2, mu = 2.0;
  double total = 0.0;
  for (unsigned n = 0; n < 200; ++n)
    total += mm1_state_probability(lambda, mu, n);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(mm1_state_probability(lambda, mu, 0), 1.0 - lambda / mu, 1e-12);
}

TEST(Mm1, MeanInSystemMatchesStateProbabilitySum) {
  const double lambda = 1.5, mu = 2.0;
  const Mm1Metrics m = mm1_metrics(lambda, mu);
  double mean = 0.0;
  for (unsigned n = 0; n < 500; ++n)
    mean += n * mm1_state_probability(lambda, mu, n);
  EXPECT_NEAR(mean, m.mean_in_system, 1e-9);
}

}  // namespace
}  // namespace mec::queueing

// The parallel layer's contract is determinism: the thread pool runs every
// index exactly once, the replication engine produces bit-identical
// aggregates for every thread count, and the pooled per-user sweeps match
// the serial ones bit for bit.
#include "mec/parallel/replication.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/parallel/shard_executor.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::parallel {
namespace {

std::vector<core::UserParams> homogeneous(std::size_t n, double a, double s,
                                          double tau = 0.5) {
  std::vector<core::UserParams> users(n);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = tau;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  return users;
}

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(5).thread_count(), 5u);
}

TEST(ReplicationOptions, DefaultThreadsSelectHardwareConcurrency) {
  // The documented default: threads = 0 defers to the hardware, exactly as
  // ThreadPool(0) does.  Pinned so the default cannot silently drift back
  // to single-threaded.
  const ReplicationOptions opt;
  EXPECT_EQ(opt.threads, 0u);
  EXPECT_EQ(resolve_thread_count(opt.threads),
            ThreadPool(0).thread_count());
}

TEST(AutoShardCount, HeuristicTable) {
  struct Row {
    std::size_t n, hw, expected;
  };
  // Pinned table: small populations and single-core boxes stay serial; the
  // count is min(hw, n/5000) clamped to [1, 16] once sharding pays off.
  const Row rows[] = {
      {100, 8, 1},       // tiny population: barrier costs dominate
      {9999, 64, 1},     // just below the break-even floor
      {10000, 1, 1},     // single-core box: never shard
      {10000, 0, 1},     // hardware_concurrency() unknown (reports 0)
      {10000, 8, 2},     // 10^4 devices: 2 shards of 5000
      {40000, 8, 8},     // population-rich: limited by the core count
      {40000, 4, 4},     //
      {100000, 64, 16},  // clamped at the max (barrier is a full join)
      {1000000, 64, 16},
  };
  for (const Row& row : rows)
    EXPECT_EQ(auto_shard_count(row.n, row.hw), row.expected)
        << "n=" << row.n << " hw=" << row.hw;
}

TEST(ResolveShardCount, ExplicitRequestBeatsEnvBeatsAuto) {
  // CI runs this suite under MEC_SHARDS=4; restore whatever was there.
  const char* saved = std::getenv("MEC_SHARDS");
  const std::string restore = saved != nullptr ? saved : "";
  // An explicit request always wins, whatever the environment says.
  EXPECT_EQ(resolve_shard_count(3, 1000000), 3u);
  EXPECT_EQ(resolve_shard_count(1, 1000000), 1u);
  // 0 defers to MEC_SHARDS when set...
  ASSERT_EQ(setenv("MEC_SHARDS", "5", 1), 0);
  EXPECT_EQ(resolve_shard_count(0, 100), 5u);
  EXPECT_EQ(resolve_shard_count(7, 100), 7u);  // ...unless explicit
  // ...and to the autotune heuristic when unset.
  ASSERT_EQ(unsetenv("MEC_SHARDS"), 0);
  EXPECT_EQ(resolve_shard_count(0, 100), 1u);  // small n: serial either way
  if (!restore.empty()) {
    ASSERT_EQ(setenv("MEC_SHARDS", restore.c_str(), 1), 0);
  }
}

TEST(ResolveShardCount, RejectsMalformedEnvValues) {
  // A typo'd MEC_SHARDS used to be silently ignored (falling back to the
  // autotuner) — a forced-shard CI lane could quietly run serial.  Now it
  // fails fast with a message naming the variable and the accepted range.
  const char* saved = std::getenv("MEC_SHARDS");
  const std::string restore = saved != nullptr ? saved : "";
  const char* bad[] = {"banana", "", "4x", " 4", "0",  "-1",
                       "4097",   "1e3", "0x4", "99999999999999999999"};
  for (const char* value : bad) {
    ASSERT_EQ(setenv("MEC_SHARDS", value, 1), 0);
    try {
      (void)resolve_shard_count(0, 1000000);
      FAIL() << "MEC_SHARDS=\"" << value << "\" was accepted";
    } catch (const RuntimeError& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("MEC_SHARDS"), std::string::npos) << message;
      EXPECT_NE(message.find("[1, 4096]"), std::string::npos) << message;
      EXPECT_NE(message.find(value), std::string::npos) << message;
    }
    // An explicit request never consults the environment, so a bad value
    // must not break callers that pass their own count.
    EXPECT_EQ(resolve_shard_count(3, 1000000), 3u);
  }
  // Boundary values of the documented range are accepted.
  ASSERT_EQ(setenv("MEC_SHARDS", "1", 1), 0);
  EXPECT_EQ(resolve_shard_count(0, 1000000), 1u);
  ASSERT_EQ(setenv("MEC_SHARDS", "4096", 1), 0);
  EXPECT_EQ(resolve_shard_count(0, 1000000), 4096u);
  if (restore.empty()) {
    ASSERT_EQ(unsetenv("MEC_SHARDS"), 0);
  } else {
    ASSERT_EQ(setenv("MEC_SHARDS", restore.c_str(), 1), 0);
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 7u}) {
    for (const std::size_t grain : {1u, 3u, 1000u}) {
      ThreadPool pool(threads);
      constexpr std::size_t n = 537;
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for_each(
          n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads
                                     << " grain=" << grain;
    }
  }
}

TEST(ThreadPool, IsReusableAcrossLoops) {
  ThreadPool pool(4);
  std::vector<double> out(100, 0.0);
  for (int round = 1; round <= 3; ++round)
    pool.parallel_for_each(out.size(), [&](std::size_t i) {
      out[i] += static_cast<double>(round);
    });
  for (const double v : out) EXPECT_DOUBLE_EQ(v, 6.0);
}

TEST(ThreadPool, HandlesEmptyRangeAndRejectsBadArguments) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_each(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_THROW(pool.parallel_for_each(1, [](std::size_t) {}, 0),
               ContractViolation);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for_each(64,
                               [](std::size_t i) {
                                 if (i == 13)
                                   throw std::runtime_error("boom");
                               }),
        std::runtime_error);
    // The pool must stay usable after a failed loop.
    std::atomic<int> sum{0};
    pool.parallel_for_each(10, [&](std::size_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 10);
  }
}

TEST(ReplicationSeed, MatchesTheDesUtilizationSourceIdiom) {
  EXPECT_EQ(replication_seed(7, 0), 7 + 0x9E3779B97F4A7C15ULL);
  EXPECT_EQ(replication_seed(7, 1), 7 + 2 * 0x9E3779B97F4A7C15ULL);
  EXPECT_NE(replication_seed(7, 0), replication_seed(8, 0));
}

sim::SimulationOptions short_options(std::uint64_t seed = 5) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 40.0;
  o.seed = seed;
  o.fixed_gamma = 0.2;
  return o;
}

void expect_metric_eq(const MetricSummary& a, const MetricSummary& b) {
  ASSERT_EQ(a.samples.count(), b.samples.count());
  EXPECT_DOUBLE_EQ(a.samples.mean(), b.samples.mean());
  if (a.samples.count() >= 2) {
    EXPECT_DOUBLE_EQ(a.samples.stddev(), b.samples.stddev());
    EXPECT_DOUBLE_EQ(a.ci.half_width, b.ci.half_width);
  }
  EXPECT_DOUBLE_EQ(a.ci.mean, b.ci.mean);
}

TEST(RunReplications, AggregatesAreBitIdenticalAcrossThreadCounts) {
  const auto users = homogeneous(40, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  const auto delay = core::make_reciprocal_delay();

  ReplicationOptions opt;
  opt.replications = 8;
  opt.threads = 1;
  const ReplicationResult serial =
      run_replications(users, 10.0, delay, short_options(), xs, opt);
  for (const std::size_t threads : {2u, 8u}) {
    opt.threads = threads;
    const ReplicationResult parallel =
        run_replications(users, 10.0, delay, short_options(), xs, opt);
    ASSERT_EQ(parallel.replications, serial.replications);
    EXPECT_EQ(parallel.total_events, serial.total_events);
    expect_metric_eq(parallel.mean_cost, serial.mean_cost);
    expect_metric_eq(parallel.mean_queue_length, serial.mean_queue_length);
    expect_metric_eq(parallel.mean_offload_fraction,
                     serial.mean_offload_fraction);
    expect_metric_eq(parallel.measured_utilization,
                     serial.measured_utilization);
    expect_metric_eq(parallel.mean_local_sojourn, serial.mean_local_sojourn);
    expect_metric_eq(parallel.mean_offload_delay, serial.mean_offload_delay);
  }
}

TEST(RunReplications, EachReplicationIsTheSeedDerivedSingleRun) {
  const auto users = homogeneous(25, 1.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  const auto delay = core::make_reciprocal_delay();

  ReplicationOptions opt;
  opt.replications = 3;
  opt.threads = 2;
  opt.keep_runs = true;
  const ReplicationResult r =
      run_replications(users, 10.0, delay, short_options(11), xs, opt);
  ASSERT_EQ(r.runs.size(), 3u);
  for (std::size_t rep = 0; rep < 3; ++rep) {
    sim::SimulationOptions o = short_options(11);
    o.seed = replication_seed(11, rep);
    const sim::MecSimulation single(users, 10.0, delay, o);
    const sim::SimulationResult expected = single.run_tro(xs);
    EXPECT_EQ(r.runs[rep].total_events, expected.total_events);
    EXPECT_DOUBLE_EQ(r.runs[rep].mean_cost, expected.mean_cost);
    EXPECT_DOUBLE_EQ(r.runs[rep].measured_utilization,
                     expected.measured_utilization);
  }
  // Different seeds => genuinely different replications.
  EXPECT_NE(r.runs[0].total_events, r.runs[1].total_events);
}

TEST(RunReplications, ConfidenceIntervalIsSaneAndTightensTheEstimate) {
  const auto users = homogeneous(50, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  const auto delay = core::make_reciprocal_delay();

  ReplicationOptions opt;
  opt.replications = 10;
  opt.threads = 4;
  opt.confidence = 0.98;
  const ReplicationResult r =
      run_replications(users, 10.0, delay, short_options(), xs, opt);
  EXPECT_EQ(r.mean_cost.samples.count(), 10u);
  EXPECT_GT(r.mean_cost.ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_cost.ci.confidence, 0.98);
  EXPECT_TRUE(r.mean_cost.ci.contains(r.mean_cost.mean()));
  // The replicated mean must agree with theory about as well as any single
  // run does: per-device alpha for threshold 2 at theta = 0.75.
  EXPECT_NEAR(r.measured_utilization.mean(),
              core::utilization_of_thresholds(users, xs, 10.0), 0.02);
  const std::string text = summarize(r);
  EXPECT_NE(text.find("replications: 10"), std::string::npos);
  EXPECT_NE(text.find("mean cost"), std::string::npos);
}

TEST(RunReplications, SingleReplicationHasDegenerateInterval) {
  const auto users = homogeneous(10, 1.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  ReplicationOptions opt;
  opt.replications = 1;
  const ReplicationResult r = run_replications(
      users, 10.0, core::make_reciprocal_delay(), short_options(), xs, opt);
  EXPECT_EQ(r.mean_cost.samples.count(), 1u);
  // One replication cannot estimate a dispersion: the half-width is NaN
  // ("not available"), never a fabricated 0 that would claim certainty.
  EXPECT_TRUE(std::isnan(r.mean_cost.ci.half_width));
  const std::string text = summarize(r);
  EXPECT_NE(text.find("n/a"), std::string::npos);
}

TEST(RunReplications, RejectsInvalidConfigurations) {
  const auto users = homogeneous(5, 1.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  const auto delay = core::make_reciprocal_delay();
  ReplicationOptions opt;
  opt.replications = 0;
  EXPECT_THROW(
      run_replications(users, 10.0, delay, short_options(), xs, opt),
      ContractViolation);
  opt.replications = 2;
  sim::SimulationOptions with_epoch = short_options();
  with_epoch.epoch_period = 1.0;
  with_epoch.on_epoch = [](double, double) {};
  EXPECT_THROW(run_replications(users, 10.0, delay, with_epoch, xs, opt),
               ContractViolation);
  const std::vector<double> wrong(2, 1.0);
  EXPECT_THROW(
      run_replications(users, 10.0, delay, short_options(), wrong, opt),
      ContractViolation);
}

TEST(RunReplications, AcceptsAnExternalPool) {
  const auto users = homogeneous(20, 1.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  const auto delay = core::make_reciprocal_delay();
  ThreadPool pool(3);
  ReplicationOptions opt;
  opt.replications = 4;
  const ReplicationResult internal =
      run_replications(users, 10.0, delay, short_options(), xs, opt);
  const ReplicationResult external =
      run_replications(users, 10.0, delay, short_options(), xs, opt, &pool);
  EXPECT_EQ(external.total_events, internal.total_events);
  EXPECT_DOUBLE_EQ(external.mean_cost.mean(), internal.mean_cost.mean());
}

TEST(ParallelBestResponse, BitIdenticalToSerialAcrossThreadCounts) {
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, 3000);
  const auto pop = population::sample_population(cfg, 17);
  for (const double gamma : {0.0, 0.21, 0.9}) {
    const core::BestResponse serial =
        core::best_response(pop.users, cfg.delay, cfg.capacity, gamma);
    for (const std::size_t threads : {1u, 4u}) {
      ThreadPool pool(threads);
      const core::BestResponse parallel = core::best_response(
          pop.users, cfg.delay, cfg.capacity, gamma, pool);
      ASSERT_EQ(parallel.thresholds, serial.thresholds) << "gamma=" << gamma;
      EXPECT_DOUBLE_EQ(parallel.utilization, serial.utilization)
          << "gamma=" << gamma;
    }
  }
}

TEST(ParallelUtilizationOfThresholds, BitIdenticalToSerial) {
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAboveService, 2000);
  const auto pop = population::sample_population(cfg, 19);
  std::vector<double> xs(pop.size());
  for (std::size_t n = 0; n < xs.size(); ++n)
    xs[n] = static_cast<double>(n % 7);
  const double serial =
      core::utilization_of_thresholds(pop.users, xs, cfg.capacity);
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_DOUBLE_EQ(
        core::utilization_of_thresholds(pop.users, xs, cfg.capacity, pool),
        serial);
  }
}

TEST(DesUtilizationSource, IsReproducibleAcrossConstructions) {
  // Two sources with identical options must yield the same utilization
  // sequence call by call (the per-call decorrelation is deterministic).
  const auto users = homogeneous(60, 1.5, 2.0);
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 60.0;
  o.seed = 23;
  const std::vector<double> xs(users.size(), 1.0);
  sim::DesUtilizationSource a(users, 10.0, core::make_reciprocal_delay(), o);
  sim::DesUtilizationSource b(users, 10.0, core::make_reciprocal_delay(), o);
  const double a1 = a.utilization(xs);
  const double a2 = a.utilization(xs);
  EXPECT_DOUBLE_EQ(a1, b.utilization(xs));
  EXPECT_DOUBLE_EQ(a2, b.utilization(xs));
  EXPECT_NE(a1, a2);  // successive calls are decorrelated on purpose
  EXPECT_EQ(a.last_result().total_events, b.last_result().total_events);
}

}  // namespace
}  // namespace mec::parallel

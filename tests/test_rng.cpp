#include "mec/random/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace mec::random {
namespace {

TEST(Xoshiro256, IsDeterministicForEqualSeeds) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Xoshiro256, LongJumpChangesTheStream) {
  Xoshiro256 a(7);
  Xoshiro256 b = a;
  b.long_jump();
  EXPECT_NE(a, b);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, SplitStreamsArePairwiseDistinct) {
  Xoshiro256 parent(99);
  Xoshiro256 c1 = parent.split();
  Xoshiro256 c2 = parent.split();
  Xoshiro256 c3 = parent.split();
  std::set<std::uint64_t> firsts{c1(), c2(), c3(), parent()};
  EXPECT_EQ(firsts.size(), 4u);
}

TEST(Xoshiro256, SplitChildEqualsPreSplitParentStream) {
  Xoshiro256 parent(4321);
  Xoshiro256 reference = parent;  // copy before split
  Xoshiro256 child = parent.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), reference());
}

TEST(Uniform01, StaysInHalfOpenUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, HasCorrectFirstTwoMoments) {
  Xoshiro256 rng(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 1000000;
  for (int i = 0; i < n; ++i) {
    const double u = uniform01(rng);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 2e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 2e-3);
}

TEST(Uniform, RespectsBoundsAndMean) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = uniform(rng, -3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0, 2e-2);
}

TEST(Exponential, HasCorrectMeanAndVariance) {
  Xoshiro256 rng(8);
  const double rate = 2.5;
  double sum = 0.0, sum2 = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double v = exponential(rng, rate);
    EXPECT_GE(v, 0.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0 / rate, 3e-3);
  EXPECT_NEAR(sum2 / n - mean * mean, 1.0 / (rate * rate), 5e-3);
}

TEST(StandardNormal, HasCorrectMomentsAndSymmetry) {
  Xoshiro256 rng(9);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double v = standard_normal(rng);
    sum += v;
    sum2 += v * v;
    sum3 += v * v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 5e-3);
  EXPECT_NEAR(sum2 / n, 1.0, 1e-2);
  EXPECT_NEAR(sum3 / n, 0.0, 2e-2);  // skewness ~ 0
}

TEST(Bernoulli, MatchesRequestedProbability) {
  Xoshiro256 rng(10);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += bernoulli(rng, 0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 5e-3);
}

TEST(Bernoulli, HandlesDegenerateProbabilities) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
    EXPECT_FALSE(bernoulli(rng, -0.5));
    EXPECT_TRUE(bernoulli(rng, 1.5));
  }
}

TEST(UniformIndex, CoversTheFullRangeUniformly) {
  Xoshiro256 rng(12);
  constexpr std::uint64_t n = 10;
  std::array<int, n> counts{};
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t idx = uniform_index(rng, n);
    ASSERT_LT(idx, n);
    ++counts[idx];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 5e-3);
}

TEST(UniformIndex, SingleElementAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(rng, 1), 0u);
}

}  // namespace
}  // namespace mec::random

#include "mec/io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mec::io {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, NumbersRoundTripDoubles) {
  const double v = 0.1234567890123456789;
  const std::string s = Json::number(v).dump();
  EXPECT_DOUBLE_EQ(std::stod(s), v);
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(Json::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(JsonTest, CompactArraysAndObjects) {
  const Json j = Json::object({
      {"xs", Json::array({Json::integer(1), Json::integer(2)})},
      {"name", Json::string("run")},
  });
  // std::map orders keys alphabetically.
  EXPECT_EQ(j.dump(), R"({"name":"run","xs":[1,2]})");
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(Json::array({}).dump(), "[]");
  EXPECT_EQ(Json::object({}).dump(), "{}");
  EXPECT_EQ(Json::array({}).dump(2), "[]");
}

TEST(JsonTest, PrettyPrintingIndents) {
  const Json j = Json::object({{"a", Json::integer(1)}});
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
  const Json nested =
      Json::object({{"xs", Json::array({Json::integer(1)})}});
  EXPECT_EQ(nested.dump(2), "{\n  \"xs\": [\n    1\n  ]\n}");
}

TEST(JsonTest, DeepNestingSerializes) {
  Json j = Json::integer(0);
  for (int i = 0; i < 50; ++i) j = Json::array({j});
  const std::string s = j.dump();
  EXPECT_EQ(s.find("0"), 50u);  // 50 opening brackets then the zero
}

}  // namespace
}  // namespace mec::io

#include "mec/core/fluid_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

TEST(Rk4, SolvesExponentialDecayToHighOrder) {
  // dy/dt = -y, y(0) = 1 => y(t) = e^{-t}; RK4 global error is O(dt^4).
  const auto trajectory = integrate_rk4(
      [](double, double y) { return -y; }, 1.0, 0.0, 5.0, 0.01);
  EXPECT_NEAR(trajectory.back().y, std::exp(-5.0), 1e-9);
  EXPECT_DOUBLE_EQ(trajectory.front().t, 0.0);
  EXPECT_NEAR(trajectory.back().t, 5.0, 1e-12);
}

TEST(Rk4, SolvesDrivenOscillatorComponent) {
  // dy/dt = cos(t), y(0) = 0 => y(t) = sin(t).
  const auto trajectory = integrate_rk4(
      [](double t, double) { return std::cos(t); }, 0.0, 0.0, 3.0, 0.01);
  for (const OdePoint& p : trajectory)
    EXPECT_NEAR(p.y, std::sin(p.t), 1e-8);
}

TEST(Rk4, HonorsPartialFinalStep) {
  // t1 not a multiple of dt: last point must land exactly on t1.
  const auto trajectory = integrate_rk4(
      [](double, double) { return 1.0; }, 0.0, 0.0, 1.05, 0.1);
  EXPECT_NEAR(trajectory.back().t, 1.05, 1e-12);
  EXPECT_NEAR(trajectory.back().y, 1.05, 1e-12);
}

TEST(Rk4, RejectsBadArguments) {
  const auto f = [](double, double y) { return y; };
  EXPECT_THROW(integrate_rk4(f, 0.0, 1.0, 0.5, 0.1), ContractViolation);
  EXPECT_THROW(integrate_rk4(f, 0.0, 0.0, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(integrate_rk4(nullptr, 0.0, 0.0, 1.0, 0.1), ContractViolation);
}

TEST(FluidModel, ConvergesToTheMfneFromBelowAndAbove) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       800),
      55);
  const auto& cfg = pop.config;
  const double star =
      solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  for (const double gamma0 : {0.0, 0.9}) {
    FluidOptions opt;
    opt.gamma0 = gamma0;
    opt.horizon = 40.0;
    const auto trajectory =
        fluid_trajectory(pop.users, cfg.delay, cfg.capacity, opt);
    EXPECT_NEAR(trajectory.back().y, star, 2e-3) << "gamma0=" << gamma0;
  }
}

TEST(FluidModel, ApproachesTheEquilibriumMonotonically) {
  // Continuous-time analogue of Theorem 2's bisection property: the drift
  // V(gamma)-gamma is strictly decreasing, so no overshoot-and-return.
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAboveService,
                                       500),
      56);
  const auto& cfg = pop.config;
  const double star =
      solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  FluidOptions opt;
  opt.gamma0 = 0.0;
  const auto trajectory =
      fluid_trajectory(pop.users, cfg.delay, cfg.capacity, opt);
  double prev = 0.0;
  for (const OdePoint& p : trajectory) {
    EXPECT_GE(p.y, prev - 1e-9);      // non-decreasing from below
    EXPECT_LE(p.y, star + 1e-3);      // never overshoots past gamma*
    prev = p.y;
  }
}

TEST(FluidModel, KappaOnlyRescalesTime) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kBelowService,
                                       300),
      57);
  const auto& cfg = pop.config;
  FluidOptions slow;
  slow.kappa = 1.0;
  slow.horizon = 20.0;
  FluidOptions fast;
  fast.kappa = 4.0;
  fast.horizon = 5.0;
  const auto a = fluid_trajectory(pop.users, cfg.delay, cfg.capacity, slow);
  const auto b = fluid_trajectory(pop.users, cfg.delay, cfg.capacity, fast);
  EXPECT_NEAR(a.back().y, b.back().y, 1e-4);
}

}  // namespace
}  // namespace mec::core

#include "mec/random/empirical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mec/common/error.hpp"
#include "mec/random/empirical_data.hpp"

namespace mec::random {
namespace {

TEST(EmpiricalDataset, ComputesSummaryStatistics) {
  const EmpiricalDataset d({4.0, 1.0, 3.0, 2.0}, "t");
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_NEAR(d.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
}

TEST(EmpiricalDataset, RejectsEmptyAndNegativeData) {
  EXPECT_THROW(EmpiricalDataset({}, "x"), ContractViolation);
  EXPECT_THROW(EmpiricalDataset({1.0, -2.0}, "x"), ContractViolation);
}

TEST(EmpiricalDataset, QuantilesInterpolateLinearly) {
  const EmpiricalDataset d({0.0, 10.0}, "q");
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 2.5);
  EXPECT_THROW(d.quantile(1.5), ContractViolation);
}

TEST(EmpiricalDataset, QuantileOfSingletonIsTheValue) {
  const EmpiricalDataset d({7.0}, "one");
  EXPECT_DOUBLE_EQ(d.quantile(0.3), 7.0);
}

TEST(EmpiricalDataset, ResampleDrawsOnlyObservedValues) {
  const EmpiricalDataset d({1.0, 2.0, 3.0}, "r");
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    const double v = d.resample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
}

TEST(EmpiricalDataset, HistogramMassSumsToOne) {
  std::vector<double> data;
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) data.push_back(uniform(rng, 0.0, 10.0));
  const EmpiricalDataset d(std::move(data), "h");
  const auto [edges, mass] = d.histogram(25);
  EXPECT_EQ(edges.size(), 25u);
  EXPECT_NEAR(std::accumulate(mass.begin(), mass.end(), 0.0), 1.0, 1e-12);
  // Uniform data => roughly equal mass per bin.
  for (const double m : mass) EXPECT_NEAR(m, 0.04, 0.015);
}

TEST(EmpiricalDataset, DegenerateHistogramPutsAllMassInFirstBin) {
  const EmpiricalDataset d({2.0, 2.0, 2.0}, "deg");
  const auto [edges, mass] = d.histogram(5);
  EXPECT_DOUBLE_EQ(mass[0], 1.0);
}

TEST(EmpiricalDataset, ScaledMultipliesEverySample) {
  const EmpiricalDataset d({1.0, 3.0}, "s");
  const EmpiricalDataset s = d.scaled(2.0, "s2");
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_THROW(d.scaled(0.0, "bad"), ContractViolation);
}

TEST(EmpiricalDataset, AsDistributionRoundTripsMeanAndBounds) {
  const EmpiricalDataset d({1.0, 2.0, 6.0}, "dist");
  const Distribution dist = d.as_distribution();
  EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
  EXPECT_DOUBLE_EQ(dist.lower_bound(), 1.0);
  EXPECT_DOUBLE_EQ(dist.upper_bound(), 6.0);
}

// --- Synthetic measured datasets (Fig. 6 stand-ins) ---

TEST(SyntheticYolo, HasPaperSizeAndPositiveRightSkewedTimes) {
  const EmpiricalDataset times = synthetic_yolo_processing_times();
  EXPECT_EQ(times.size(), 1000u);
  EXPECT_GT(times.min(), 0.0);
  // Right-skew: mean above median, as in the Fig. 6a histogram.
  EXPECT_GT(times.mean(), times.quantile(0.5));
}

TEST(SyntheticYolo, IsDeterministicPerSeed) {
  const auto a = synthetic_yolo_processing_times(123);
  const auto b = synthetic_yolo_processing_times(123);
  const auto c = synthetic_yolo_processing_times(124);
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_NE(a.samples(), c.samples());
}

TEST(ServiceRates, HitThePaperMeanExactly) {
  const auto times = synthetic_yolo_processing_times();
  const auto rates = service_rates_from_times(times);
  EXPECT_EQ(rates.size(), times.size());
  EXPECT_NEAR(rates.mean(), kPaperMeanServiceRate, 1e-9);
  EXPECT_GT(rates.min(), 0.0);
}

TEST(ServiceRates, CustomTargetMeanIsRespected) {
  const auto times = synthetic_yolo_processing_times();
  const auto rates = service_rates_from_times(times, 3.0);
  EXPECT_NEAR(rates.mean(), 3.0, 1e-9);
}

TEST(SyntheticWifi, MatchesRequestedMeanAndShape) {
  const auto lat = synthetic_wifi_offload_latencies(999, 1000, 2.5);
  EXPECT_EQ(lat.size(), 1000u);
  EXPECT_NEAR(lat.mean(), 2.5, 1e-9);
  EXPECT_GT(lat.min(), 0.0);
  EXPECT_GT(lat.mean(), lat.quantile(0.5));  // right-skew, like Fig. 6b
}

TEST(SyntheticWifi, RejectsBadParameters) {
  EXPECT_THROW(synthetic_wifi_offload_latencies(1, 0, 1.0), ContractViolation);
  EXPECT_THROW(synthetic_wifi_offload_latencies(1, 10, -1.0),
               ContractViolation);
}

TEST(SyntheticDatasets, StragglersGiveHeavierTailThanBody) {
  const auto times = synthetic_yolo_processing_times();
  // 99th percentile should sit well above 3x the median, evidencing the
  // secondary (straggler) mode.
  EXPECT_GT(times.quantile(0.99), 1.8 * times.quantile(0.5));
}

}  // namespace
}  // namespace mec::random

// Tests for the shared bench runner (typed flag registry, rejection rules,
// exit codes) and the declarative sweep driver (spec parsing, deterministic
// enumeration, resume-skip, and byte-identical fresh-vs-resumed campaigns).
#include "bench/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/sweep.hpp"
#include "mec/common/error.hpp"
#include "mec/io/args.hpp"
#include "mec/parallel/replication.hpp"

namespace mec::bench {
namespace {

namespace fs = std::filesystem;

int run_argv(std::vector<std::string> argv) {
  argv.insert(argv.begin(), "mec_bench");
  std::vector<const char*> raw;
  raw.reserve(argv.size());
  for (const std::string& a : argv) raw.push_back(a.c_str());
  return run_main(static_cast<int>(raw.size()), raw.data());
}

fs::path temp_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// One registration shared by the runner tests below.  The experiment echoes
// its typed flags into globals so the tests can observe what the Context
// delivered.
struct Seen {
  bool ran = false;
  bool smoke = false;
  long count = 0;
  double rate = 0.0;
  bool fast = false;
  std::string file;
};
Seen g_seen;

int probe_run(Context& ctx) {
  g_seen.ran = true;
  g_seen.smoke = ctx.smoke();
  g_seen.count = ctx.get_long("count");
  g_seen.rate = ctx.get_double("rate");
  g_seen.fast = ctx.get_bool("fast");
  g_seen.file = ctx.get_path("file");
  return 0;
}

[[maybe_unused]] const bool kProbe = register_experiment(
    {"probe",
     "test probe experiment",
     {{"count", FlagKind::kLong, "3", "a long"},
      {"rate", FlagKind::kDouble, "0.5", "a double"},
      {"fast", FlagKind::kBool, "false", "a switch"},
      {"file", FlagKind::kPath, "", "a path"}},
     probe_run});

TEST(BenchRunner, ListIncludesRegisteredExperiments) {
  bool found = false;
  for (const Experiment* e : experiments())
    if (e->name == "probe") found = true;
  EXPECT_TRUE(found);
  EXPECT_NE(find_experiment("probe"), nullptr);
  EXPECT_EQ(find_experiment("nonesuch"), nullptr);
  EXPECT_EQ(run_argv({"--list"}), 0);
}

TEST(BenchRunner, UnknownExperimentExitsTwo) {
  EXPECT_EQ(run_argv({"nonesuch"}), 2);
  EXPECT_EQ(run_argv({}), 2);
}

TEST(BenchRunner, TypedFlagsReachTheExperiment) {
  g_seen = {};
  EXPECT_EQ(run_argv({"probe", "--count=7", "--rate", "1.25", "--fast",
                      "--file=x.csv", "--smoke"}),
            0);
  EXPECT_TRUE(g_seen.ran);
  EXPECT_TRUE(g_seen.smoke);
  EXPECT_EQ(g_seen.count, 7);
  EXPECT_DOUBLE_EQ(g_seen.rate, 1.25);
  EXPECT_TRUE(g_seen.fast);
  EXPECT_EQ(g_seen.file, "x.csv");
}

TEST(BenchRunner, DefaultsApplyWhenFlagsAbsent) {
  g_seen = {};
  EXPECT_EQ(run_argv({"probe"}), 0);
  EXPECT_FALSE(g_seen.smoke);
  EXPECT_EQ(g_seen.count, 3);
  EXPECT_DOUBLE_EQ(g_seen.rate, 0.5);
  EXPECT_FALSE(g_seen.fast);
  EXPECT_EQ(g_seen.file, "");
}

TEST(BenchRunner, TypoedFlagIsRejectedNotSwallowed) {
  g_seen = {};
  EXPECT_NE(run_argv({"probe", "--cout=7"}), 0);
  EXPECT_FALSE(g_seen.ran);  // rejected before the experiment body ran
}

TEST(BenchRunner, BareValueTypedFlagIsRejected) {
  // `--file` without a value used to silently become the string "true".
  g_seen = {};
  EXPECT_NE(run_argv({"probe", "--file"}), 0);
  EXPECT_FALSE(g_seen.ran);
  EXPECT_NE(run_argv({"probe", "--count"}), 0);
  // A bare declared *bool* stays fine.
  EXPECT_EQ(run_argv({"probe", "--fast"}), 0);
}

TEST(BenchRunner, MistypedValuesAreRejectedEagerly) {
  g_seen = {};
  EXPECT_NE(run_argv({"probe", "--count=many"}), 0);
  EXPECT_NE(run_argv({"probe", "--rate=fast"}), 0);
  EXPECT_FALSE(g_seen.ran);
}

TEST(BenchRunner, HelpExitsZeroWithoutRunning) {
  g_seen = {};
  EXPECT_EQ(run_argv({"probe", "--help"}), 0);
  EXPECT_FALSE(g_seen.ran);
}

TEST(BenchRunner, RegistrationRejectsDuplicatesAndCollisions) {
  Experiment dup{"probe", "again", {}, probe_run};
  EXPECT_THROW(register_experiment(dup), RuntimeError);
  Experiment unnamed{"", "no name", {}, probe_run};
  EXPECT_THROW(register_experiment(unnamed), RuntimeError);
  Experiment collides{"collides",
                      "declares a common flag",
                      {{"smoke", FlagKind::kBool, "false", "clash"}},
                      probe_run};
  EXPECT_THROW(register_experiment(collides), RuntimeError);
}

TEST(BenchRunner, ContextRefusesUndeclaredFlagReads) {
  const Experiment* probe = find_experiment("probe");
  ASSERT_NE(probe, nullptr);
  const io::Args args = io::Args::parse({"probe"});
  Context ctx(*probe, args);
  EXPECT_THROW(ctx.get_long("undeclared"), RuntimeError);
  EXPECT_THROW(ctx.has("undeclared"), RuntimeError);
  // Declared but with the wrong kind is a contract violation.
  EXPECT_THROW(ctx.get_long("rate"), ContractViolation);
}

// ---------------------------------------------------------------------------
// Sweep driver
// ---------------------------------------------------------------------------

constexpr const char* kTinySpec = R"(# tiny campaign
seed = 11
warmup = 2
horizon = 10
window = 5
replications = 2
scenario = theoretical:eq:50
policy = tro
policy = fixed:0.3
shards = 1
shards = 2
)";

TEST(SweepSpec, ParsesKeysAndAxes) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  EXPECT_EQ(spec.seed, 11u);
  EXPECT_DOUBLE_EQ(spec.warmup, 2.0);
  EXPECT_DOUBLE_EQ(spec.horizon, 10.0);
  EXPECT_DOUBLE_EQ(spec.window, 5.0);
  EXPECT_EQ(spec.replications, 2u);
  ASSERT_EQ(spec.scenarios.size(), 1u);
  EXPECT_EQ(spec.policies, (std::vector<std::string>{"tro", "fixed:0.3"}));
  EXPECT_EQ(spec.shards, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(spec.faults, std::vector<std::string>{"none"});  // default axis
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_sweep_spec("horizon"), RuntimeError);  // no '='
  EXPECT_THROW(parse_sweep_spec("bogus = 1\n"), RuntimeError);
  EXPECT_THROW(parse_sweep_spec("seed = 1\nseed = 2\n"), RuntimeError);
  EXPECT_THROW(parse_sweep_spec("shards = 1\nshards = 1\n"), RuntimeError);
  EXPECT_THROW(parse_sweep_spec("policy = warp\n"), RuntimeError);
  EXPECT_THROW(parse_sweep_spec("scenario = theoretical:sideways\n"),
               RuntimeError);
  EXPECT_THROW(parse_sweep_spec("horizon = -5\n"), RuntimeError);
}

TEST(SweepSpec, EnumerationIsDeterministicAndGridKeyed) {
  SweepSpec spec = parse_sweep_spec(kTinySpec);
  const std::vector<SweepCell> cells = enumerate_cells(spec);
  // 1 scenario x 1 fault x 2 policies x 2 shard counts x 2 replications.
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    // Seeds are a pure function of (base seed, grid index), so a resumed
    // campaign re-derives the same seed for any subset of cells.
    EXPECT_EQ(cells[i].seed, parallel::replication_seed(spec.seed, i));
    EXPECT_EQ(cells[i].path,
              spec.out_dir + "/" + cells[i].label + ".meclog");
  }
  // Shards is the second-innermost axis; replication the innermost.
  EXPECT_EQ(cells[0].shard_count, 1u);
  EXPECT_EQ(cells[0].replication, 0u);
  EXPECT_EQ(cells[1].replication, 1u);
  EXPECT_EQ(cells[2].shard_count, 2u);
  EXPECT_EQ(cells[4].policy, "fixed:0.3");
  const std::vector<SweepCell> again = enumerate_cells(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].label, again[i].label);
    EXPECT_EQ(cells[i].seed, again[i].seed);
  }
}

TEST(SweepRun, ResumeSkipsCompletedCells) {
  const fs::path dir = temp_dir("sweep_resume");
  SweepSpec spec = parse_sweep_spec(kTinySpec);
  spec.out_dir = (dir / "out").string();

  const SweepReport fresh = run_sweep(spec);
  EXPECT_EQ(fresh.total, 8u);
  EXPECT_EQ(fresh.executed, 8u);
  EXPECT_EQ(fresh.skipped, 0u);

  const SweepReport resumed = run_sweep(spec);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.skipped, 8u);

  // A truncated output (simulated crash mid-cell) is re-run, not trusted.
  const std::vector<SweepCell> cells = enumerate_cells(spec);
  const std::string victim = cells[3].path;
  const std::string bytes = read_bytes(victim);
  ASSERT_GT(bytes.size(), 16u);
  std::ofstream(victim, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  const SweepReport repaired = run_sweep(spec);
  EXPECT_EQ(repaired.executed, 1u);
  EXPECT_EQ(repaired.skipped, 7u);
  EXPECT_EQ(read_bytes(victim), bytes);  // and repaired byte-identically

  // force reruns everything.
  SweepRunOptions force;
  force.force = true;
  const SweepReport forced = run_sweep(spec, force);
  EXPECT_EQ(forced.executed, 8u);

  // dry_run classifies without touching anything.
  SweepRunOptions dry;
  dry.dry_run = true;
  std::size_t seen = 0;
  dry.on_cell = [&](const SweepCell&, bool executed) {
    ++seen;
    EXPECT_FALSE(executed);
  };
  const SweepReport classified = run_sweep(spec, dry);
  EXPECT_EQ(classified.executed, 0u);
  EXPECT_EQ(seen, 8u);
}

TEST(SweepRun, ResumedCampaignIsByteIdenticalToFreshOne) {
  const fs::path dir = temp_dir("sweep_identical");
  SweepSpec spec = parse_sweep_spec(kTinySpec);

  // Campaign A: every cell in one fresh pass.
  spec.out_dir = (dir / "fresh").string();
  run_sweep(spec);
  const std::vector<SweepCell> cells = enumerate_cells(spec);

  // Campaign B: the same grid, interrupted and resumed — drop two cells
  // (one per policy) and let the resume pass re-execute just those.
  SweepSpec resumed_spec = spec;
  resumed_spec.out_dir = (dir / "resumed").string();
  run_sweep(resumed_spec);
  const std::vector<SweepCell> resumed_cells = enumerate_cells(resumed_spec);
  fs::remove(resumed_cells[1].path);
  fs::remove(resumed_cells[6].path);
  const SweepReport report = run_sweep(resumed_spec);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(report.skipped, 6u);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string fresh_bytes = read_bytes(cells[i].path);
    ASSERT_FALSE(fresh_bytes.empty());
    EXPECT_EQ(fresh_bytes, read_bytes(resumed_cells[i].path))
        << "cell " << cells[i].label << " diverged after resume";
  }
}

}  // namespace
}  // namespace mec::bench

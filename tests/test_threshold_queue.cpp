// Validates the TRO closed forms (Eq. 7-8) against an independent generic
// birth-death solver, the paper's literal formulas, and structural
// properties (flow balance, monotonicity, continuity, limits).
#include "mec/queueing/threshold_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/queueing/birth_death.hpp"

namespace mec::queueing {
namespace {

/// Literal transcription of the paper's Eq. (7)-(8) for theta != 1.
TroMetrics paper_formulas(double theta, double x) {
  const double fl = std::floor(x);
  const double frac = x - fl;
  const double pi0 =
      (1.0 - theta) /
      (1.0 - std::pow(theta, fl + 1.0) +
       frac * (1.0 - theta) * std::pow(theta, fl + 1.0));
  TroMetrics m{};
  m.p_empty = pi0;
  m.mean_queue_length =
      pi0 * (theta * (1.0 - std::pow(theta, fl)) /
                 ((1.0 - theta) * (1.0 - theta)) +
             (fl + 1.0) * frac * std::pow(theta, fl + 1.0) -
             fl * std::pow(theta, fl + 1.0) / (1.0 - theta));
  m.offload_probability =
      (1.0 - theta) * std::pow(theta, fl) * (1.0 - (1.0 - theta) * frac) /
      (1.0 - std::pow(theta, fl + 1.0) +
       frac * (1.0 - theta) * std::pow(theta, fl + 1.0));
  return m;
}

TEST(TroQueue, ZeroThresholdOffloadsEverything) {
  for (const double theta : {0.2, 1.0, 4.0}) {
    const TroMetrics m = tro_metrics(theta, 0.0);
    EXPECT_DOUBLE_EQ(m.offload_probability, 1.0);
    EXPECT_DOUBLE_EQ(m.mean_queue_length, 0.0);
    EXPECT_DOUBLE_EQ(m.p_empty, 1.0);
  }
}

TEST(TroQueue, MatchesPaperEquationsAwayFromThetaOne) {
  for (const double theta : {0.3, 0.8, 1.7, 4.0}) {
    for (const double x : {0.5, 1.0, 2.5, 3.0, 7.25}) {
      const TroMetrics ours = tro_metrics(theta, x);
      const TroMetrics paper = paper_formulas(theta, x);
      EXPECT_NEAR(ours.p_empty, paper.p_empty, 1e-10)
          << "theta=" << theta << " x=" << x;
      EXPECT_NEAR(ours.mean_queue_length, paper.mean_queue_length, 1e-9)
          << "theta=" << theta << " x=" << x;
      EXPECT_NEAR(ours.offload_probability, paper.offload_probability, 1e-10)
          << "theta=" << theta << " x=" << x;
    }
  }
}

TEST(TroQueue, MatchesPaperThetaOneSpecialCase) {
  // Q(x) = (floor(x)+1)(2x-floor(x)) / (2(x+1)); alpha(x) = 1/(x+1).
  for (const double x : {0.0, 0.5, 1.0, 2.5, 6.75}) {
    const TroMetrics m = tro_metrics(1.0, x);
    const double fl = std::floor(x);
    EXPECT_NEAR(m.mean_queue_length,
                (fl + 1.0) * (2.0 * x - fl) / (2.0 * (x + 1.0)), 1e-12)
        << "x=" << x;
    EXPECT_NEAR(m.offload_probability, 1.0 / (x + 1.0), 1e-12) << "x=" << x;
  }
}

TEST(TroQueue, AgreesWithGenericBirthDeathSolverOnIntegerThresholds) {
  for (const double theta : {0.25, 0.9, 1.0, 1.1, 3.0}) {
    for (const int k : {1, 2, 5, 11}) {
      // Births: admit at rate theta (time in units of 1/s) up to state k-1;
      // the k-th birth is blocked (integer threshold => frac = 0).
      std::vector<double> births(static_cast<std::size_t>(k), theta);
      std::vector<double> deaths(static_cast<std::size_t>(k), 1.0);
      const auto pi = stationary_distribution(births, deaths);
      const TroMetrics m = tro_metrics(theta, static_cast<double>(k));
      EXPECT_NEAR(m.mean_queue_length, mean_state(pi), 1e-10)
          << "theta=" << theta << " k=" << k;
      EXPECT_NEAR(m.p_empty, pi[0], 1e-12);
      // PASTA: offload prob = P(queue == k).
      EXPECT_NEAR(m.offload_probability, pi.back(), 1e-12);
    }
  }
}

TEST(TroQueue, FractionalThresholdMatchesAugmentedBirthDeathChain) {
  const double theta = 1.8, x = 3.4;
  // States 0..4; birth blocked with prob 0.6 at state 3.
  std::vector<double> births{theta, theta, theta, 0.4 * theta};
  std::vector<double> deaths{1.0, 1.0, 1.0, 1.0};
  const auto pi = stationary_distribution(births, deaths);
  const TroMetrics m = tro_metrics(theta, x);
  EXPECT_NEAR(m.mean_queue_length, mean_state(pi), 1e-10);
  EXPECT_NEAR(m.p_empty, pi[0], 1e-12);
  EXPECT_NEAR(m.offload_probability, 0.6 * pi[3] + pi[4], 1e-12);
}

TEST(TroQueue, StationaryDistributionIsConsistentWithMetrics) {
  const double theta = 2.2, x = 4.7;
  const auto pi = tro_stationary_distribution(theta, x);
  ASSERT_EQ(pi.size(), 6u);  // states 0..5
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
  const TroMetrics m = tro_metrics(theta, x);
  EXPECT_NEAR(pi[0], m.p_empty, 1e-12);
  EXPECT_NEAR(mean_state(pi), m.mean_queue_length, 1e-10);
}

TEST(TroQueue, IsNumericallyStableAcrossThetaEqualsOne) {
  // The direct-summation implementation must be smooth through theta = 1,
  // where the closed forms have 0/0 cancellation.
  const double x = 5.5;
  const TroMetrics below = tro_metrics(1.0 - 1e-9, x);
  const TroMetrics at = tro_metrics(1.0, x);
  const TroMetrics above = tro_metrics(1.0 + 1e-9, x);
  EXPECT_NEAR(below.mean_queue_length, at.mean_queue_length, 1e-6);
  EXPECT_NEAR(above.mean_queue_length, at.mean_queue_length, 1e-6);
  EXPECT_NEAR(below.offload_probability, at.offload_probability, 1e-6);
  EXPECT_NEAR(above.offload_probability, at.offload_probability, 1e-6);
}

TEST(TroQueue, SurvivesLargeThresholdsWithHeavyLoad) {
  // theta = 6, x = 500: weights reach 6^500; rescaling must hold.
  const TroMetrics m = tro_metrics(6.0, 500.0);
  EXPECT_NEAR(m.offload_probability, 1.0 - 1.0 / 6.0, 1e-6);
  EXPECT_NEAR(m.mean_queue_length, 500.0 - 0.2, 0.5);
  EXPECT_GE(m.p_empty, 0.0);
}

TEST(TroQueue, LightLoadLargeThresholdApproachesOpenMm1) {
  const double theta = 0.4;
  const TroMetrics m = tro_metrics(theta, 80.0);
  EXPECT_NEAR(m.offload_probability, 0.0, 1e-10);
  EXPECT_NEAR(m.mean_queue_length, theta / (1.0 - theta), 1e-9);
}

TEST(TroQueue, RejectsInvalidArguments) {
  EXPECT_THROW(tro_metrics(0.0, 1.0), ContractViolation);
  EXPECT_THROW(tro_metrics(-1.0, 1.0), ContractViolation);
  EXPECT_THROW(tro_metrics(1.0, -0.1), ContractViolation);
  EXPECT_THROW(tro_metrics(1.0, 2e6), ContractViolation);
}

// --- Property sweeps over (theta, x) ---

class TroPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TroPropertyTest, FlowBalanceHolds) {
  // Rate into the local queue a(1-alpha) equals service throughput
  // s(1-pi_0); in theta units: theta(1-alpha) = 1 - pi_0.
  const auto [theta, x] = GetParam();
  const TroMetrics m = tro_metrics(theta, x);
  EXPECT_NEAR(theta * (1.0 - m.offload_probability), 1.0 - m.p_empty, 1e-10);
}

TEST_P(TroPropertyTest, AlphaDecreasesAndQueueGrowsWithThreshold) {
  const auto [theta, x] = GetParam();
  const TroMetrics lo = tro_metrics(theta, x);
  const TroMetrics hi = tro_metrics(theta, x + 0.25);
  EXPECT_LE(hi.offload_probability, lo.offload_probability + 1e-12);
  EXPECT_GE(hi.mean_queue_length, lo.mean_queue_length - 1e-12);
}

TEST_P(TroPropertyTest, MetricsAreContinuousInThreshold) {
  const auto [theta, x] = GetParam();
  const TroMetrics a = tro_metrics(theta, x);
  const TroMetrics b = tro_metrics(theta, x + 1e-8);
  EXPECT_NEAR(a.offload_probability, b.offload_probability, 1e-6);
  EXPECT_NEAR(a.mean_queue_length, b.mean_queue_length, 1e-6);
}

TEST_P(TroPropertyTest, ProbabilitiesAreProbabilities) {
  const auto [theta, x] = GetParam();
  const TroMetrics m = tro_metrics(theta, x);
  EXPECT_GE(m.offload_probability, 0.0);
  EXPECT_LE(m.offload_probability, 1.0);
  EXPECT_GE(m.p_empty, 0.0);
  EXPECT_LE(m.p_empty, 1.0);
  EXPECT_GE(m.mean_queue_length, 0.0);
  EXPECT_LE(m.mean_queue_length, std::floor(x) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TroPropertyTest,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.95, 1.0, 1.05, 2.0, 4.0,
                                         8.0),
                       ::testing::Values(0.0, 0.3, 1.0, 1.5, 2.0, 3.7, 6.0,
                                         10.25)));

}  // namespace
}  // namespace mec::queueing

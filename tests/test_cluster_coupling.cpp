// Multi-cluster edge-coupling battery.
//
// Pins the vector-gamma generalization of the coupling layer to the scalar
// engine it replaced:
//   - the 1-cluster default topology reproduces pre-change engine output
//     bit-for-bit (hexfloat goldens captured from the scalar-gamma build,
//     with and without a fault schedule);
//   - per-cluster offload accounting conserves the total offload mass for
//     every cluster count, and the offload *decisions* are invariant to the
//     topology (devices never see gamma when deciding);
//   - GammaReplay's cross-leg merge produces per-cluster gamma trajectories
//     bit-identical to a serial replay of the pre-merged log;
//   - malformed topologies are rejected up front.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace {

using namespace mec;

// Same population generator as the stream-log battery: the goldens below
// were captured against exactly these draws.
std::vector<core::UserParams> mixed_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(777);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

std::vector<double> mixed_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.25 * static_cast<double>(i % 9));
  return xs;
}

sim::SimulationOptions golden_options() {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 40.0;
  o.seed = 2024;
  o.sample_interval = 2.0;
  o.initial_gamma = 0.25;
  o.utilization_ewma_tau = 6.0;
  o.shards = 1;
  return o;
}

sim::SimulationResult run_golden_scenario(
    const std::shared_ptr<const fault::FaultSchedule>& schedule,
    const sim::ClusterTopology& topology = {}) {
  const auto users = mixed_users(41);
  sim::SimulationOptions o = golden_options();
  o.faults = schedule;
  o.topology = topology;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  return des.run_tro(mixed_thresholds(users.size()));
}

// --- scalar-engine goldens (pre-change build, bitwise) ----------------------

// Captured from the scalar-gamma engine at the commit before the topology
// change, same toolchain and flags as CI.  Any bit that moves here means the
// 1-cluster reduction is no longer the identity.
TEST(SingleClusterBitCompat, ReproducesScalarEngineGoldenNoFaults) {
  const sim::SimulationResult r = run_golden_scenario(nullptr);
  EXPECT_EQ(r.total_events, 5570u);
  EXPECT_EQ(r.measured_utilization, 0x1.5a895da895da9p-4);
  EXPECT_EQ(r.mean_cost, 0x1.8f7932fe299aep+0);
  EXPECT_EQ(r.mean_queue_length, 0x1.2ea01029419fbp-2);
  EXPECT_EQ(r.mean_offload_fraction, 0x1.d463e580b0f88p-2);
  const double golden_gamma[] = {
      0x1.977368e33fc32p-3, 0x1.454aba45ca21bp-3, 0x1.1854b5ef9270ap-3,
      0x1.d328ee0d12093p-4, 0x1.aa8884dace7b2p-4, 0x1.6d855d8766ac3p-4,
      0x1.5c0fd3c563a93p-4, 0x1.6b52e621a21a7p-4, 0x1.63c1e831a0d49p-4,
      0x1.609a34c3c3665p-4, 0x1.678f1c0c7be7fp-4, 0x1.5cc2d4d873138p-4,
      0x1.64bd12f0d5f37p-4, 0x1.58d0b994a3368p-4, 0x1.6f19dd91f8493p-4,
      0x1.6d11c83eadf3ep-4, 0x1.64468295a3485p-4, 0x1.721c2757da8e4p-4,
      0x1.7adaae4d476fap-4, 0x1.71c7e63888397p-4, 0x1.6fac321700dc2p-4,
      0x1.837c47a879408p-4};
  ASSERT_EQ(r.timeline.size(), std::size(golden_gamma));
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(r.timeline[i].time, 2.0 * static_cast<double>(i + 1));
    EXPECT_EQ(r.timeline[i].utilization_estimate, golden_gamma[i]);
  }
  // The default topology's per-cluster view is the scalar view, bitwise.
  ASSERT_EQ(r.cluster_utilization.size(), 1u);
  EXPECT_EQ(r.cluster_utilization[0], r.measured_utilization);
  ASSERT_EQ(r.cluster_offloads.size(), 1u);
}

TEST(SingleClusterBitCompat, ReproducesScalarEngineGoldenUnderFaults) {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(12.0, 0.6);
  schedule->add_outage(18.0, 24.0, fault::OutageMode::kPenalty, 0.4);
  schedule->add_capacity_scale(30.0, 1.0);
  const sim::SimulationResult r = run_golden_scenario(schedule);
  EXPECT_EQ(r.total_events, 5574u);
  EXPECT_EQ(r.measured_utilization, 0x1.a69b0812465bbp-4);
  EXPECT_EQ(r.mean_cost, 0x1.99588f5aa6434p+0);
  const double golden_gamma[] = {
      0x1.977368e33fc32p-3, 0x1.454aba45ca21bp-3, 0x1.1854b5ef9270ap-3,
      0x1.d328ee0d12093p-4, 0x1.aa8884dace7b2p-4, 0x1.6d855d8766ac3p-4,
      0x1.220d3079d30dp-3,  0x1.2ec5151c07161p-3, 0x1.2876ec295b5bdp-3,
      0x1.25d5d6a322d55p-3, 0x1.2ba1ecb511ecp-3,  0x1.22a25c09b53afp-3,
      0x1.29483a735cf59p-3, 0x1.1f589aa68802cp-3, 0x1.31eae34ef9925p-3,
      0x1.6d11c83eadf3ep-4, 0x1.64468295a3485p-4, 0x1.721c2757da8e4p-4,
      0x1.7adaae4d476fap-4, 0x1.71c7e63888397p-4, 0x1.6fac321700dc2p-4,
      0x1.837c47a879408p-4};
  ASSERT_EQ(r.timeline.size(), std::size(golden_gamma));
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(r.timeline[i].utilization_estimate, golden_gamma[i]);
  }
}

// An *explicit* 1-cluster topology (share vector {1.0}, one price) must be
// indistinguishable from the default-constructed one.
TEST(SingleClusterBitCompat, ExplicitOneClusterTopologyIsTheIdentity) {
  sim::ClusterTopology one;
  one.clusters = 1;
  one.shares = {1.0};
  const sim::SimulationResult a = run_golden_scenario(nullptr);
  const sim::SimulationResult b = run_golden_scenario(nullptr, one);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i)
    EXPECT_EQ(a.timeline[i].utilization_estimate,
              b.timeline[i].utilization_estimate);
}

// --- offload-mass conservation ----------------------------------------------

// Per-cluster accounting must conserve the total offload mass for any
// cluster count, and the decisions themselves are topology-invariant: an
// offload depends only on the device's queue and RNG stream, never on which
// cluster it routes to.
TEST(ClusterConservation, PerClusterOffloadsConserveTotalMass) {
  const auto users = mixed_users(41);
  std::vector<std::uint64_t> per_device_baseline;
  for (const std::size_t clusters : {1u, 2u, 3u, 5u}) {
    SCOPED_TRACE("clusters = " + std::to_string(clusters));
    sim::SimulationOptions o = golden_options();
    o.topology.clusters = clusters;
    sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
    const sim::SimulationResult r =
        des.run_tro(mixed_thresholds(users.size()));
    ASSERT_EQ(r.cluster_offloads.size(), clusters);
    ASSERT_EQ(r.cluster_utilization.size(), clusters);
    std::uint64_t cluster_sum = 0;
    for (const std::uint64_t n : r.cluster_offloads) cluster_sum += n;
    std::uint64_t device_sum = 0;
    for (const auto& d : r.devices) device_sum += d.offloaded;
    EXPECT_EQ(cluster_sum, device_sum);
    if (per_device_baseline.empty()) {
      for (const auto& d : r.devices) per_device_baseline.push_back(d.offloaded);
    } else {
      ASSERT_EQ(r.devices.size(), per_device_baseline.size());
      for (std::size_t n = 0; n < r.devices.size(); ++n)
        EXPECT_EQ(r.devices[n].offloaded, per_device_baseline[n])
            << "device " << n << ": offload decisions moved with the topology";
    }
  }
}

// Heterogeneous shares: each cluster's measured utilization is its offload
// mass over its *own* capacity slice, so shrinking a share inflates that
// cluster's utilization relative to the even split.
TEST(ClusterConservation, HeterogeneousSharesScaleUtilization) {
  const auto users = mixed_users(41);
  sim::SimulationOptions o = golden_options();
  o.topology.clusters = 2;
  o.topology.shares = {0.8, 0.2};
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r = des.run_tro(mixed_thresholds(users.size()));
  ASSERT_EQ(r.cluster_utilization.size(), 2u);
  // Devices split evenly (even/odd ids) but cluster 1 owns a quarter of the
  // capacity of cluster 0, so its utilization must come out higher.
  EXPECT_GT(r.cluster_utilization[1], r.cluster_utilization[0]);
  for (const double g : r.cluster_utilization) EXPECT_GT(g, 0.0);
}

// --- GammaReplay: cross-leg merge == serial reference ----------------------

// Feeds the same synthetic offload log to GammaReplay twice: once as three
// shard legs (the engine's view) and once pre-merged into a single serial
// log (the reference).  The merged replay must touch every per-cluster EWMA
// in exactly the same order, so trajectories agree bit-for-bit.
TEST(GammaReplayMerge, MultiLegMergeMatchesSerialReference) {
  sim::ClusterTopology topology;
  topology.clusters = 3;
  topology.shares = {0.5, 0.3, 0.2};
  const double capacity = 8.0;
  const double tau = 4.0;
  const double initial_gamma = 0.2;
  constexpr std::uint32_t kDevices = 12;

  // Synthetic per-leg logs: contiguous device partitions, each leg sorted in
  // time, no cross-leg ties (distinct irrational-ish offsets).
  std::vector<std::vector<sim::OffloadRecord>> legs(3);
  random::Xoshiro256 rng(99);
  for (std::uint32_t dev = 0; dev < kDevices; ++dev) {
    const std::size_t leg = dev / 4;  // 3 legs x 4 devices
    double t = 0.1 + 0.37 * static_cast<double>(dev);
    for (int j = 0; j < 6; ++j) {
      t += random::uniform(rng, 0.5, 4.0);
      sim::OffloadRecord rec;
      rec.time = t;
      rec.latency = random::uniform(rng, 0.1, 0.5);
      rec.device = dev;
      rec.cluster = static_cast<std::uint16_t>(topology.route(dev));
      rec.measured = true;
      legs[leg].push_back(rec);
    }
    std::sort(legs[leg].begin(), legs[leg].end(),
              [](const auto& a, const auto& b) { return a.time < b.time; });
  }
  // Serial reference: one log, globally time-ordered.
  std::vector<sim::OffloadRecord> merged;
  for (const auto& leg : legs)
    merged.insert(merged.end(), leg.begin(), leg.end());
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });

  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const auto run_replay = [&](std::span<const std::span<const sim::OffloadRecord>>
                                  logs,
                              std::vector<std::vector<double>>& trajectories,
                              std::vector<double>& delay_sums) {
    sim::GammaReplay replay(delay, tau, initial_gamma, capacity,
                            /*warmup=*/0.0, /*t_end=*/100.0, kDevices, {},
                            topology);
    stats::LatencySketch sketch;
    replay.consume(logs, delay_sums.data(), sketch);
    for (const double at : {30.0, 34.0, 38.0, 42.0}) {
      const auto gammas = replay.cluster_gammas(at);
      trajectories.emplace_back(gammas.begin(), gammas.end());
      trajectories.back().push_back(replay.gamma_at(at));
    }
  };

  std::vector<std::span<const sim::OffloadRecord>> multi_view(legs.begin(),
                                                              legs.end());
  std::vector<std::vector<double>> multi_traj, serial_traj;
  std::vector<double> multi_delay_sums(kDevices, 0.0);
  std::vector<double> serial_delay_sums(kDevices, 0.0);
  run_replay(multi_view, multi_traj, multi_delay_sums);
  const std::span<const sim::OffloadRecord> serial_view[] = {merged};
  run_replay(serial_view, serial_traj, serial_delay_sums);

  ASSERT_EQ(multi_traj.size(), serial_traj.size());
  for (std::size_t i = 0; i < multi_traj.size(); ++i) {
    SCOPED_TRACE("grid read " + std::to_string(i));
    ASSERT_EQ(multi_traj[i].size(), serial_traj[i].size());
    for (std::size_t k = 0; k < multi_traj[i].size(); ++k)
      EXPECT_EQ(multi_traj[i][k], serial_traj[i][k]) << "entry " << k;
  }
  for (std::uint32_t dev = 0; dev < kDevices; ++dev) {
    EXPECT_EQ(multi_delay_sums[dev], serial_delay_sums[dev])
        << "device " << dev;
  }
}

// --- topology validation ----------------------------------------------------

TEST(TopologyValidation, MalformedTopologiesAreRejected) {
  const auto users = mixed_users(5);
  const auto expect_rejected = [&](sim::ClusterTopology t) {
    sim::SimulationOptions o;
    o.horizon = 10.0;
    o.topology = std::move(t);
    EXPECT_THROW(
        sim::MecSimulation(users, 8.0, core::make_reciprocal_delay(), o),
        ContractViolation);
  };
  {
    sim::ClusterTopology t;
    t.clusters = 0;
    expect_rejected(std::move(t));
  }
  {
    sim::ClusterTopology t;
    t.clusters = 2;
    t.shares = {0.5};  // wrong arity
    expect_rejected(std::move(t));
  }
  {
    sim::ClusterTopology t;
    t.clusters = 2;
    t.shares = {0.9, 0.3};  // does not sum to 1
    expect_rejected(std::move(t));
  }
  {
    sim::ClusterTopology t;
    t.clusters = 2;
    t.shares = {1.2, -0.2};  // negative share
    expect_rejected(std::move(t));
  }
}

// Per-cluster fault targets referencing a cluster outside the topology are
// caught at construction, not silently dropped.
TEST(TopologyValidation, FaultClusterOutOfRangeIsRejected) {
  const auto users = mixed_users(5);
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(5.0, 0.5, /*cluster=*/3);
  sim::SimulationOptions o;
  o.horizon = 10.0;
  o.topology.clusters = 2;
  o.faults = schedule;
  EXPECT_THROW(
      sim::MecSimulation(users, 8.0, core::make_reciprocal_delay(), o),
      ContractViolation);
}

}  // namespace

#include "mec/queueing/erlang.hpp"

#include <gtest/gtest.h>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/queueing/mm1.hpp"

namespace mec::queueing {
namespace {

TEST(ErlangB, MatchesHandComputedSmallCases) {
  // B(1, a) = a/(1+a).
  EXPECT_NEAR(erlang_b(1, 2.0), 2.0 / 3.0, 1e-12);
  // B(2, a) = (a*B1)/(2 + a*B1) with B1 = a/(1+a); for a=2: B1=2/3,
  // B2 = (4/3)/(2+4/3) = 0.4.
  EXPECT_NEAR(erlang_b(2, 2.0), 0.4, 1e-12);
  // Classic table value: B(5, 3) ~ 0.1101.
  EXPECT_NEAR(erlang_b(5, 3.0), 0.110054, 1e-5);
}

TEST(ErlangB, ZeroLoadNeverBlocks) {
  for (const std::size_t n : {1u, 4u, 32u})
    EXPECT_DOUBLE_EQ(erlang_b(n, 0.0), 0.0);
}

TEST(ErlangB, IsMonotone) {
  // Increasing in load, decreasing in servers.
  EXPECT_LT(erlang_b(4, 1.0), erlang_b(4, 3.0));
  EXPECT_GT(erlang_b(2, 2.0), erlang_b(8, 2.0));
}

TEST(ErlangC, SingleServerReducesToMm1WaitProbability) {
  // For N=1, P(wait) = rho.
  for (const double rho : {0.1, 0.5, 0.9})
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-12);
}

TEST(ErlangC, KnownTableValue) {
  // C(5, 3) ~ 0.23624.
  EXPECT_NEAR(erlang_c(5, 3.0), 0.23624, 1e-4);
}

TEST(ErlangC, RejectsOverload) {
  EXPECT_THROW(erlang_c(2, 2.0), ContractViolation);
  EXPECT_THROW(erlang_c(2, 2.5), ContractViolation);
}

TEST(MmnWait, SingleServerMatchesMm1) {
  const double mu = 2.0, lambda = 1.3;
  EXPECT_NEAR(mmn_mean_wait(1, mu, lambda),
              mm1_metrics(lambda, mu).mean_wait, 1e-12);
  EXPECT_NEAR(mmn_mean_sojourn(1, mu, lambda),
              mm1_metrics(lambda, mu).mean_sojourn, 1e-12);
}

TEST(MmnWait, PoolingBeatsSplitServers) {
  // A pooled M/M/2 must wait less than two separate M/M/1 at half load...
  // i.e. W(M/M/2 at lambda) < W(M/M/1 at lambda/2) for equal total capacity.
  const double mu = 1.0, lambda = 1.4;
  EXPECT_LT(mmn_mean_wait(2, mu, lambda),
            mm1_metrics(lambda / 2.0, mu).mean_wait);
}

TEST(MmnWait, ZeroArrivalsWaitNothing) {
  EXPECT_DOUBLE_EQ(mmn_mean_wait(4, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(mmn_mean_sojourn(4, 2.0, 0.0), 0.5);
}

TEST(ErlangCDelay, IsAdmissibleAndSaturates) {
  const core::EdgeDelay delay = core::make_erlang_c_delay(16, 5.0, 0.9);
  // Increasing (spot-checked by the EdgeDelay constructor) and bounded.
  EXPECT_GT(delay(0.5), delay(0.1));
  // Past the cap the delay stays flat, keeping g bounded on [0, 1].
  EXPECT_DOUBLE_EQ(delay(0.95), delay(0.9));
  EXPECT_DOUBLE_EQ(delay(1.0), delay(0.9));
  // At gamma -> 0 the sojourn reduces to the bare service time.
  EXPECT_NEAR(delay(0.0), 1.0 / 5.0, 1e-9);
}

TEST(ErlangCDelay, MoreServersSmoothTheKnee) {
  // At the same utilization, a bigger pool with the same per-server rate
  // waits less (statistical multiplexing), so its delay curve lies below.
  const core::EdgeDelay small = core::make_erlang_c_delay(2, 5.0);
  const core::EdgeDelay big = core::make_erlang_c_delay(64, 5.0);
  for (const double gamma : {0.3, 0.6, 0.85})
    EXPECT_LT(big(gamma), small(gamma)) << "gamma=" << gamma;
}

TEST(ErlangCDelay, RejectsBadParameters) {
  EXPECT_THROW(core::make_erlang_c_delay(0, 1.0), ContractViolation);
  EXPECT_THROW(core::make_erlang_c_delay(4, 0.0), ContractViolation);
  EXPECT_THROW(core::make_erlang_c_delay(4, 1.0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace mec::queueing

#include "mec/io/args.hpp"

#include <gtest/gtest.h>

#include "mec/common/error.hpp"

namespace mec::io {
namespace {

TEST(ArgsParse, CommandAndFlagsInBothStyles) {
  const Args a = Args::parse({"mfne", "--n=500", "--seed", "7", "--trace"});
  EXPECT_EQ(a.command(), "mfne");
  EXPECT_EQ(a.get_long("n", 0), 500);
  EXPECT_EQ(a.get_long("seed", 0), 7);
  EXPECT_TRUE(a.get_bool("trace", false));
  EXPECT_TRUE(a.has("n"));
  EXPECT_FALSE(a.has("missing"));
}

TEST(ArgsParse, EmptyInputGivesEmptyCommand) {
  const Args a = Args::parse({});
  EXPECT_TRUE(a.command().empty());
}

TEST(ArgsParse, FlagsOnlyWithoutCommand) {
  const Args a = Args::parse({"--help"});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.get_bool("help", false));
}

TEST(ArgsParse, RejectsMalformedInput) {
  EXPECT_THROW(Args::parse({"cmd", "stray-positional"}), RuntimeError);
  EXPECT_THROW(Args::parse({"cmd", "--dup=1", "--dup=2"}), RuntimeError);
  EXPECT_THROW(Args::parse({"cmd", "--=v"}), RuntimeError);
}

TEST(ArgsTyped, DefaultsApplyWhenAbsent) {
  const Args a = Args::parse({"cmd"});
  EXPECT_EQ(a.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(a.get_double("d", 2.5), 2.5);
  EXPECT_EQ(a.get_long("l", -3), -3);
  EXPECT_FALSE(a.get_bool("b", false));
}

TEST(ArgsTyped, ParsesNumbersStrictly) {
  const Args a = Args::parse({"cmd", "--x=1.5", "--k=12", "--bad=1.5zz"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0.0), 1.5);
  EXPECT_EQ(a.get_long("k", 0), 12);
  EXPECT_THROW(a.get_double("bad", 0.0), RuntimeError);
  EXPECT_THROW(a.get_long("x", 0), RuntimeError);  // 1.5 is not an integer
}

TEST(ArgsTyped, ParsesBooleansStrictly) {
  const Args a =
      Args::parse({"cmd", "--yes=true", "--no=0", "--odd=maybe"});
  EXPECT_TRUE(a.get_bool("yes", false));
  EXPECT_FALSE(a.get_bool("no", true));
  EXPECT_THROW(a.get_bool("odd", false), RuntimeError);
}

TEST(ArgsValidation, RejectUnknownCatchesTypos) {
  const Args a = Args::parse({"cmd", "--seed=1", "--sedd=2"});
  EXPECT_THROW(a.reject_unknown({"seed"}), RuntimeError);
  EXPECT_NO_THROW(a.reject_unknown({"seed", "sedd"}));
}

TEST(ArgsParse, SpaceSeparatedValueStopsAtNextFlag) {
  const Args a = Args::parse({"cmd", "--flag", "--other=1"});
  EXPECT_EQ(a.get_string("flag", ""), "true");  // switch, not "--other=1"
  EXPECT_EQ(a.get_long("other", 0), 1);
}

}  // namespace
}  // namespace mec::io

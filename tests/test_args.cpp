#include "mec/io/args.hpp"

#include <gtest/gtest.h>

#include "mec/common/error.hpp"

namespace mec::io {
namespace {

TEST(ArgsParse, CommandAndFlagsInBothStyles) {
  const Args a = Args::parse({"mfne", "--n=500", "--seed", "7", "--trace"});
  EXPECT_EQ(a.command(), "mfne");
  EXPECT_EQ(a.get_long("n", 0), 500);
  EXPECT_EQ(a.get_long("seed", 0), 7);
  EXPECT_TRUE(a.get_bool("trace", false));
  EXPECT_TRUE(a.has("n"));
  EXPECT_FALSE(a.has("missing"));
}

TEST(ArgsParse, EmptyInputGivesEmptyCommand) {
  const Args a = Args::parse({});
  EXPECT_TRUE(a.command().empty());
}

TEST(ArgsParse, FlagsOnlyWithoutCommand) {
  const Args a = Args::parse({"--help"});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.get_bool("help", false));
}

TEST(ArgsParse, RejectsMalformedInput) {
  EXPECT_THROW(Args::parse({"cmd", "stray-positional"}), RuntimeError);
  EXPECT_THROW(Args::parse({"cmd", "--dup=1", "--dup=2"}), RuntimeError);
  EXPECT_THROW(Args::parse({"cmd", "--=v"}), RuntimeError);
}

TEST(ArgsTyped, DefaultsApplyWhenAbsent) {
  const Args a = Args::parse({"cmd"});
  EXPECT_EQ(a.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(a.get_double("d", 2.5), 2.5);
  EXPECT_EQ(a.get_long("l", -3), -3);
  EXPECT_FALSE(a.get_bool("b", false));
}

TEST(ArgsTyped, ParsesNumbersStrictly) {
  const Args a = Args::parse({"cmd", "--x=1.5", "--k=12", "--bad=1.5zz"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0.0), 1.5);
  EXPECT_EQ(a.get_long("k", 0), 12);
  EXPECT_THROW(a.get_double("bad", 0.0), RuntimeError);
  EXPECT_THROW(a.get_long("x", 0), RuntimeError);  // 1.5 is not an integer
}

TEST(ArgsTyped, ParsesBooleansStrictly) {
  const Args a =
      Args::parse({"cmd", "--yes=true", "--no=0", "--odd=maybe"});
  EXPECT_TRUE(a.get_bool("yes", false));
  EXPECT_FALSE(a.get_bool("no", true));
  EXPECT_THROW(a.get_bool("odd", false), RuntimeError);
}

TEST(ArgsValidation, RejectUnknownCatchesTypos) {
  const Args a = Args::parse({"cmd", "--seed=1", "--sedd=2"});
  EXPECT_THROW(a.reject_unknown({"seed"}), RuntimeError);
  EXPECT_NO_THROW(a.reject_unknown({"seed", "sedd"}));
}

TEST(ArgsParse, SpaceSeparatedValueStopsAtNextFlag) {
  const Args a = Args::parse({"cmd", "--flag", "--other=1"});
  EXPECT_EQ(a.get_string("flag", ""), "true");  // switch, not "--other=1"
  EXPECT_EQ(a.get_long("other", 0), 1);
}

TEST(ArgsParse, TracksWhichFlagsWereBare) {
  const Args a = Args::parse({"cmd", "--switch", "--val=x", "--spaced", "y"});
  EXPECT_TRUE(a.was_bare("switch"));
  EXPECT_FALSE(a.was_bare("val"));
  EXPECT_FALSE(a.was_bare("spaced"));
  EXPECT_FALSE(a.was_bare("absent"));
}

TEST(ArgsTyped, GetPathRejectsBareFlags) {
  // `--csv` with no value must not become a file literally named "true".
  const Args a = Args::parse({"cmd", "--csv", "--log=run.meclog"});
  EXPECT_THROW(a.get_path("csv"), RuntimeError);
  EXPECT_EQ(a.get_path("log"), "run.meclog");
  EXPECT_EQ(a.get_path("absent"), "");
  EXPECT_EQ(a.get_path("absent", "dflt"), "dflt");
}

TEST(ArgsTyped, LongAcceptsExactIntegerScientificNotation) {
  const Args a = Args::parse({"cmd", "--n=1e6", "--m=1.5e1", "--cap=2.5E3"});
  EXPECT_EQ(a.get_long("n", 0), 1000000);
  EXPECT_EQ(a.get_long("m", 0), 15);
  EXPECT_EQ(a.get_long("cap", 0), 2500);
}

TEST(ArgsTyped, LongStillRejectsNonIntegersAndGarbage) {
  const Args a = Args::parse({"cmd", "--frac=1.5e0", "--junk=1e6x",
                              "--huge=1e20", "--inf=1e999"});
  EXPECT_THROW(a.get_long("frac", 0), RuntimeError);  // 1.5 not an integer
  EXPECT_THROW(a.get_long("junk", 0), RuntimeError);  // trailing garbage
  EXPECT_THROW(a.get_long("huge", 0), RuntimeError);  // out of long range
  EXPECT_THROW(a.get_long("inf", 0), RuntimeError);
}

}  // namespace
}  // namespace mec::io

#include "mec/queueing/birth_death.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "mec/common/error.hpp"

namespace mec::queueing {
namespace {

TEST(BirthDeath, TwoStateChainMatchesDetailedBalance) {
  // 0 <-> 1 with birth 2, death 3: pi_1/pi_0 = 2/3.
  const std::vector<double> births{2.0};
  const std::vector<double> deaths{3.0};
  const auto pi = stationary_distribution(births, deaths);
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(BirthDeath, MatchesMm1kClosedForm) {
  // M/M/1/K: pi_i = rho^i (1-rho)/(1-rho^{K+1}).
  const double lambda = 2.0, mu = 3.0;
  const int k = 6;
  const std::vector<double> births(k, lambda);
  const std::vector<double> deaths(k, mu);
  const auto pi = stationary_distribution(births, deaths);
  const double rho = lambda / mu;
  const double norm = (1.0 - std::pow(rho, k + 1)) / (1.0 - rho);
  for (int i = 0; i <= k; ++i)
    EXPECT_NEAR(pi[static_cast<std::size_t>(i)], std::pow(rho, i) / norm,
                1e-12);
}

TEST(BirthDeath, NormalizesToOne) {
  const std::vector<double> births{1.0, 5.0, 0.3, 2.0};
  const std::vector<double> deaths{2.0, 1.0, 4.0, 0.5};
  const auto pi = stationary_distribution(births, deaths);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
  for (const double p : pi) EXPECT_GE(p, 0.0);
}

TEST(BirthDeath, InteriorZeroBirthCutsOffUpperStates) {
  const std::vector<double> births{1.0, 0.0, 1.0};
  const std::vector<double> deaths{1.0, 1.0, 1.0};
  const auto pi = stationary_distribution(births, deaths);
  ASSERT_EQ(pi.size(), 4u);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(pi[2], 0.0);
  EXPECT_DOUBLE_EQ(pi[3], 0.0);
}

TEST(BirthDeath, SurvivesHugeBirthToDeathRatios) {
  // theta = 50 over 200 states: naive products overflow; rescaling must not.
  const std::vector<double> births(200, 50.0);
  const std::vector<double> deaths(200, 1.0);
  const auto pi = stationary_distribution(births, deaths);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
  // Mass concentrates at the top state: pi_top ~ 1 - 1/50.
  EXPECT_NEAR(pi.back(), 1.0 - 1.0 / 50.0, 1e-3);
}

TEST(BirthDeath, RejectsBadInput) {
  EXPECT_THROW(
      stationary_distribution(std::vector<double>{}, std::vector<double>{}),
      ContractViolation);
  EXPECT_THROW(stationary_distribution(std::vector<double>{1.0},
                                       std::vector<double>{1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(stationary_distribution(std::vector<double>{-1.0},
                                       std::vector<double>{1.0}),
               ContractViolation);
  EXPECT_THROW(stationary_distribution(std::vector<double>{1.0},
                                       std::vector<double>{0.0}),
               ContractViolation);
}

TEST(BirthDeath, ExpectationAndMeanState) {
  const std::vector<double> pi{0.5, 0.25, 0.25};
  const std::vector<double> values{0.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(expectation(pi, values), 1.5);
  EXPECT_DOUBLE_EQ(mean_state(pi), 0.75);
  EXPECT_THROW(expectation(pi, std::vector<double>{1.0}), ContractViolation);
}

// Property sweep: for any load, mean state of M/M/1/K is between 0 and K and
// increases with the arrival rate.
class Mm1kLoadTest : public ::testing::TestWithParam<double> {};

TEST_P(Mm1kLoadTest, MeanStateIsMonotoneInLoad) {
  const double lambda = GetParam();
  const int k = 10;
  const std::vector<double> deaths(k, 1.0);
  const auto pi_lo = stationary_distribution(std::vector<double>(k, lambda),
                                             deaths);
  const auto pi_hi = stationary_distribution(
      std::vector<double>(k, lambda * 1.2), deaths);
  EXPECT_LE(mean_state(pi_lo), mean_state(pi_hi) + 1e-12);
  EXPECT_GE(mean_state(pi_lo), 0.0);
  EXPECT_LE(mean_state(pi_hi), k);
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1kLoadTest,
                         ::testing::Values(0.1, 0.5, 0.9, 1.0, 1.5, 3.0));

}  // namespace
}  // namespace mec::queueing

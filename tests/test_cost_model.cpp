// The Eq.-(1) cost functional: decomposition, continuity (the paper stresses
// it is continuous in x but non-differentiable at integers), and the Fig. 8
// shapes.
#include "mec/core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/threshold_oracle.hpp"

namespace mec::core {
namespace {

UserParams fig8_user(double theta) {
  // Fig. 8: tau = 1, p_L = 3, p_E = 1, w = 1, gamma with g-value such that
  // the user sees edge delay g(sqrt(3)/10-ish); the exact g-value only
  // shifts beta, so any positive constant exercises the same code.
  UserParams u;
  u.arrival_rate = 2.0;
  u.service_rate = 2.0 / theta;
  u.offload_latency = 1.0;
  u.energy_local = 3.0;
  u.energy_offload = 1.0;
  u.weight = 1.0;
  return u;
}

TEST(CostModel, BreakdownSumsToTotal) {
  const UserParams u = fig8_user(2.0);
  const CostBreakdown b = tro_cost_breakdown(u, 2.5, 0.7);
  EXPECT_NEAR(b.total(), b.local_energy + b.queueing + b.offload, 1e-12);
  EXPECT_NEAR(tro_cost(u, 2.5, 0.7), b.total(), 1e-12);
}

TEST(CostModel, ZeroThresholdCostIsPureOffloadPrice) {
  // x = 0 => alpha = 1, Q = 0: cost = w*p_E + g + tau.
  const UserParams u = fig8_user(4.0);
  const double g = 0.9;
  EXPECT_NEAR(tro_cost(u, 0.0, g),
              u.weight * u.energy_offload + g + u.offload_latency, 1e-12);
}

TEST(CostModel, InfiniteThresholdCostApproachesPureLocal) {
  // Light load, huge threshold => alpha ~ 0: cost ~ w*p_L + Q/a with
  // Q = theta/(1-theta).
  UserParams u = fig8_user(0.5);  // theta = 0.5
  const double expected = u.weight * u.energy_local +
                          (0.5 / 0.5) / u.arrival_rate;
  EXPECT_NEAR(tro_cost(u, 200.0, 1.0), expected, 1e-9);
}

TEST(CostModel, IsContinuousAtIntegerThresholds) {
  const UserParams u = fig8_user(2.0);
  for (const double x : {1.0, 2.0, 3.0, 5.0}) {
    const double left = tro_cost(u, x - 1e-9, 0.6);
    const double at = tro_cost(u, x, 0.6);
    const double right = tro_cost(u, x + 1e-9, 0.6);
    EXPECT_NEAR(left, at, 1e-6);
    EXPECT_NEAR(right, at, 1e-6);
  }
}

TEST(CostModel, HasKinksAtIntegers) {
  // Non-differentiability at integers (paper Fig. 8): one-sided slopes
  // differ where the optimal interior structure changes.  Use theta = 4,
  // x = 1 with a small edge price so the kink is pronounced.
  const UserParams u = fig8_user(4.0);
  const double g = 0.1;
  const double h = 1e-5;
  const double slope_left = (tro_cost(u, 1.0, g) - tro_cost(u, 1.0 - h, g)) / h;
  const double slope_right =
      (tro_cost(u, 1.0 + h, g) - tro_cost(u, 1.0, g)) / h;
  EXPECT_GT(std::abs(slope_left - slope_right), 1e-3);
}

TEST(CostModel, Fig8ShapeDipsToInteriorValleyThenRises) {
  // Fig. 8a shape: when the offload price beta lands in (f(1), f(2)) the
  // cost dips to an interior valley around x = 1 and then increases.  With
  // theta = 2 and a = 2: beta = 2*(g + 1 - 2), so g = 2.5 gives beta = 3 in
  // (f(1|2), f(2|2)) = (2, 8).
  const UserParams u = fig8_user(2.0);
  const double g = 2.5;
  const double c0 = tro_cost(u, 0.0, g);
  const double c1 = tro_cost(u, 1.0, g);
  const double c5 = tro_cost(u, 5.0, g);
  const double c9 = tro_cost(u, 9.0, g);
  EXPECT_LT(c1, c0);   // dipping
  EXPECT_GT(c5, c1);   // rising after the valley
  EXPECT_GT(c9, c5);   // keeps rising
}

TEST(CostModel, Fig8NegativePriceMakesCostIncreasing) {
  // With the literal Fig. 8 energies (p_L = 3, p_E = 1) and a *small* edge
  // delay, beta < 0: offloading dominates and the cost increases from x = 0
  // (the optimal threshold is 0).
  const UserParams u = fig8_user(2.0);
  const double g = std::sqrt(3.0) / 10.0;  // g + tau + (p_E - p_L) < 0
  double prev = tro_cost(u, 0.0, g);
  for (double x = 0.5; x <= 6.0; x += 0.5) {
    const double c = tro_cost(u, x, g);
    EXPECT_GT(c, prev);
    prev = c;
  }
  EXPECT_EQ(best_threshold(u, g), 0);
}

TEST(CostModel, Fig8ShapeThetaFour) {
  // Fig. 8b: theta = 4 with the same parameters: minimum at an integer >= 1.
  const UserParams u = fig8_user(4.0);
  const double g = std::sqrt(3.0) / 10.0;
  const auto m = best_threshold(u, g);
  const double at_opt = tro_cost(u, static_cast<double>(m), g);
  for (const double x : {0.0, 0.5, 2.0, 3.5, 6.0, 10.0})
    EXPECT_LE(at_opt, tro_cost(u, x, g) + 1e-9) << "x=" << x;
}

TEST(CostModel, MonotoneInEdgeDelayForFixedThreshold) {
  // A larger edge delay can only increase the cost (alpha-weighted term).
  const UserParams u = fig8_user(1.5);
  EXPECT_LE(tro_cost(u, 2.0, 0.2), tro_cost(u, 2.0, 0.8) + 1e-12);
}

TEST(CostModel, WeightScalesEnergyTermsOnly) {
  UserParams u = fig8_user(2.0);
  const CostBreakdown b1 = tro_cost_breakdown(u, 2.0, 0.5);
  u.weight = 2.0;
  const CostBreakdown b2 = tro_cost_breakdown(u, 2.0, 0.5);
  EXPECT_NEAR(b2.local_energy, 2.0 * b1.local_energy, 1e-12);
  EXPECT_NEAR(b2.queueing, b1.queueing, 1e-12);
  // Offload term: only the energy part doubles.
  const double delta = b2.offload - b1.offload;
  EXPECT_NEAR(delta, u.energy_offload * b1.alpha, 1e-12);
}

TEST(OffloadPrice, SignReflectsEnergyTradeoff) {
  UserParams u = fig8_user(1.0);
  // p_E - p_L = -2; price is positive only once g + tau exceeds 2.
  EXPECT_LT(offload_price(u, 0.5), 0.0);   // 0.5 + 1 - 2 < 0
  EXPECT_GT(offload_price(u, 1.5), 0.0);   // 1.5 + 1 - 2 > 0
  // Make local processing extremely expensive: price can go negative only
  // if g + tau + w(pE - pL) < 0.
  u.energy_local = 10.0;
  u.offload_latency = 0.1;
  EXPECT_LT(offload_price(u, 0.5), 0.0);
}

TEST(OffloadPrice, ScalesLinearlyWithArrivalRate) {
  UserParams u = fig8_user(2.0);
  const double p1 = offload_price(u, 0.4);
  u.arrival_rate *= 3.0;
  u.service_rate *= 3.0;  // keep theta fixed
  EXPECT_NEAR(offload_price(u, 0.4), 3.0 * p1, 1e-12);
}

TEST(CostModel, RejectsInvalidArguments) {
  const UserParams u = fig8_user(1.0);
  EXPECT_THROW(tro_cost(u, -1.0, 0.5), ContractViolation);
  EXPECT_THROW(tro_cost(u, 1.0, -0.5), ContractViolation);
  UserParams bad = u;
  bad.arrival_rate = 0.0;
  EXPECT_THROW(tro_cost(bad, 1.0, 0.5), ContractViolation);
}

}  // namespace
}  // namespace mec::core

// The population-free (QMC) evaluation of the mean-field limit.
#include "mec/core/mean_field_integral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

MeanFieldModel theoretical_model(double a_max) {
  MeanFieldModel m;
  m.arrival = uniform_inverse_cdf(0.0, a_max);
  m.service = uniform_inverse_cdf(1.0, 5.0);
  m.latency = uniform_inverse_cdf(0.0, 1.0);
  m.energy_local = uniform_inverse_cdf(0.0, 3.0);
  m.energy_offload = uniform_inverse_cdf(0.0, 1.0);
  m.weight = 1.0;
  m.capacity = 10.0;
  m.delay = make_reciprocal_delay();
  return m;
}

TEST(Halton, FirstBase2ValuesAreTheVanDerCorputSequence) {
  EXPECT_DOUBLE_EQ(halton(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(halton(2, 0), 0.25);
  EXPECT_DOUBLE_EQ(halton(3, 0), 0.75);
  EXPECT_DOUBLE_EQ(halton(4, 0), 0.125);
}

TEST(Halton, FirstBase3ValuesAreCorrect) {
  EXPECT_NEAR(halton(1, 1), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(halton(2, 1), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(halton(3, 1), 1.0 / 9.0, 1e-15);
}

TEST(Halton, StaysInUnitIntervalAndEquidistributes) {
  for (std::size_t d = 0; d < 5; ++d) {
    double acc = 0.0;
    const std::size_t n = 5000;
    for (std::size_t i = 1; i <= n; ++i) {
      const double v = halton(i, d);
      ASSERT_GT(v, 0.0);
      ASSERT_LT(v, 1.0);
      acc += v;
    }
    EXPECT_NEAR(acc / static_cast<double>(n), 0.5, 5e-3) << "dim " << d;
  }
}

TEST(Halton, RejectsBadArguments) {
  EXPECT_THROW(halton(0, 0), ContractViolation);
  EXPECT_THROW(halton(1, 5), ContractViolation);
}

TEST(InverseCdfs, UniformAndConstant) {
  const InverseCdf u = uniform_inverse_cdf(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u(0.0), 2.0);
  EXPECT_DOUBLE_EQ(u(0.5), 4.0);
  EXPECT_DOUBLE_EQ(u(1.0), 6.0);
  const InverseCdf c = constant_inverse_cdf(3.3);
  EXPECT_DOUBLE_EQ(c(0.1), 3.3);
  EXPECT_DOUBLE_EQ(c(0.9), 3.3);
}

TEST(MeanFieldV, IsNonIncreasingInGamma) {
  const MeanFieldModel m = theoretical_model(6.0);
  double prev = 2.0;
  for (double gamma = 0.0; gamma <= 1.0; gamma += 0.1) {
    const double v = mean_field_best_response(m, gamma, 4096);
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
}

TEST(MeanFieldV, AgreesWithLargeSampledPopulation) {
  const MeanFieldModel m = theoretical_model(6.0);
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       20000),
      99);
  for (const double gamma : {0.1, 0.3, 0.6}) {
    const double v_qmc = mean_field_best_response(m, gamma, 1 << 15);
    const double v_pop =
        best_response(pop.users, m.delay, m.capacity, gamma).utilization;
    EXPECT_NEAR(v_qmc, v_pop, 0.01) << "gamma=" << gamma;
  }
}

TEST(MeanFieldEquilibrium, MatchesPopulationMfne) {
  const MeanFieldModel m = theoretical_model(4.0);
  const double qmc = mean_field_equilibrium(m, 1 << 14).gamma_star;
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kBelowService,
                                       20000),
      123);
  const double sampled = solve_mfne(pop.users, m.delay, m.capacity).gamma_star;
  EXPECT_NEAR(qmc, sampled, 0.01);
}

TEST(MeanFieldEquilibrium, ReproducesTableOneOrdering) {
  const double lo =
      mean_field_equilibrium(theoretical_model(4.0), 1 << 13).gamma_star;
  const double mid =
      mean_field_equilibrium(theoretical_model(6.0), 1 << 13).gamma_star;
  const double hi =
      mean_field_equilibrium(theoretical_model(8.0), 1 << 13).gamma_star;
  EXPECT_NEAR(lo, 0.13, 0.02);
  EXPECT_NEAR(mid, 0.21, 0.02);
  EXPECT_NEAR(hi, 0.28, 0.02);
}

TEST(MeanFieldEquilibrium, ConvergesAsPointCountGrows) {
  const MeanFieldModel m = theoretical_model(6.0);
  const double coarse = mean_field_equilibrium(m, 1 << 10).gamma_star;
  const double fine = mean_field_equilibrium(m, 1 << 15).gamma_star;
  EXPECT_NEAR(coarse, fine, 5e-3);
}

TEST(MeanFieldEquilibrium, ReportsConvergenceAtNormalTolerances) {
  const MeanFieldEquilibrium r =
      mean_field_equilibrium(theoretical_model(6.0), 1 << 11);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 200);
}

TEST(MeanFieldEquilibrium, FlagsNonConvergenceWhenTheIterationGuardCutsOff) {
  // Mirrors the solve_mfne guard: an unreachable tolerance must terminate
  // at max_iterations with converged == false, not loop forever.
  const MeanFieldEquilibrium r =
      mean_field_equilibrium(theoretical_model(6.0), 1 << 11, 1e-30, 35);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 35);
  EXPECT_GT(r.gamma_star, 0.0);
  EXPECT_LT(r.gamma_star, 1.0);
}

TEST(MeanFieldEquilibrium, RejectsBadGuardArguments) {
  EXPECT_THROW(mean_field_equilibrium(theoretical_model(6.0), 1 << 10, 0.0),
               ContractViolation);
  EXPECT_THROW(
      mean_field_equilibrium(theoretical_model(6.0), 1 << 10, 1e-8, 0),
      ContractViolation);
}

TEST(MeanFieldModel, RejectsIncompleteModels) {
  MeanFieldModel m = theoretical_model(6.0);
  m.service = nullptr;
  EXPECT_THROW(mean_field_best_response(m, 0.5, 100), ContractViolation);
  MeanFieldModel m2 = theoretical_model(6.0);
  m2.capacity = 0.0;
  EXPECT_THROW(mean_field_best_response(m2, 0.5, 100), ContractViolation);
}

}  // namespace
}  // namespace mec::core

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"
#include "mec/stats/confidence.hpp"
#include "mec/stats/histogram.hpp"
#include "mec/stats/summary.hpp"

namespace mec::stats {
namespace {

TEST(RunningSummary, MatchesBatchFormulas) {
  const std::vector<double> data{1.0, 4.0, 2.0, 8.0, 5.0};
  RunningSummary s;
  for (const double v : data) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), mean(data));
  EXPECT_NEAR(s.variance(), variance(data), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningSummary, ContractsOnInsufficientData) {
  RunningSummary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  s.add(1.0);
  EXPECT_NO_THROW(s.mean());
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningSummary, MergeEqualsSequentialAccumulation) {
  random::Xoshiro256 rng(1);
  RunningSummary all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = random::uniform(rng, -2.0, 7.0);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningSummary, MergeWithEmptyIsIdentity) {
  RunningSummary a, empty;
  a.add(3.0);
  a.add(5.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), m);
}

TEST(RunningSummary, IsStableForLargeOffsets) {
  // Welford must not lose the variance of tiny fluctuations on a huge mean.
  RunningSummary s;
  for (int i = 0; i < 1000; ++i)
    s.add(1e12 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.0, 1e-2);
}

TEST(TimeAverage, WeighsByDuration) {
  const std::vector<double> values{2.0, 10.0};
  const std::vector<double> durations{3.0, 1.0};
  EXPECT_DOUBLE_EQ(time_average(values, durations), 4.0);
  EXPECT_THROW(time_average(values, std::vector<double>{1.0}),
               ContractViolation);
  EXPECT_THROW(time_average(values, std::vector<double>{0.0, 0.0}),
               ContractViolation);
}

TEST(HistogramTest, BinsAndClampsCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);
  h.add(3.0);
  h.add(9.99);
  h.add(42.0);   // clamps into last bin
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.mass(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_left_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.density(0), 0.2);
  EXPECT_THROW(h.count(5), ContractViolation);
}

TEST(HistogramTest, MassSumsToOne) {
  Histogram h(0.0, 1.0, 7);
  random::Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) h.add(random::uniform01(rng));
  double total = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) total += h.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.99), 2.326347874, 1e-6);   // 98% two-sided
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_THROW(normal_quantile(0.0), ContractViolation);
  EXPECT_THROW(normal_quantile(1.0), ContractViolation);
}

TEST(NormalQuantile, IsSymmetricAndMonotone) {
  for (const double p : {0.6, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
  double prev = normal_quantile(0.01);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(StudentTQuantile, MatchesTableValues) {
  // Standard t-table: t_{0.975} at various dof.
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.228, 6e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.042, 3e-3);
  EXPECT_NEAR(student_t_quantile(0.99, 20), 2.528, 8e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 5), 2.015, 2e-2);
}

TEST(StudentTQuantile, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975),
              1e-4);
}

TEST(StudentTQuantile, ExceedsNormalForSmallDof) {
  EXPECT_GT(student_t_quantile(0.975, 5), normal_quantile(0.975));
}

TEST(MeanConfidenceInterval, BasicGeometry) {
  RunningSummary s;
  for (int i = 0; i < 1000; ++i) s.add(i % 2 == 0 ? 9.0 : 11.0);
  const ConfidenceInterval ci = mean_confidence_interval(s, 0.98);
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_FALSE(ci.contains(11.0));
  EXPECT_NEAR(ci.upper() - ci.lower(), 2.0 * ci.half_width, 1e-12);
}

TEST(MeanConfidenceInterval, CoversTheTrueMeanAtNominalRate) {
  // 500 experiments, each a 98% CI over 200 uniform samples: coverage should
  // be near 0.98.
  random::Xoshiro256 rng(3);
  int covered = 0;
  const int experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    RunningSummary s;
    for (int i = 0; i < 200; ++i) s.add(random::uniform(rng, 0.0, 2.0));
    covered += mean_confidence_interval(s, 0.98).contains(1.0);
  }
  EXPECT_NEAR(static_cast<double>(covered) / experiments, 0.98, 0.03);
}

TEST(MeanConfidenceInterval, WiderAtHigherConfidence) {
  RunningSummary s;
  random::Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) s.add(random::uniform01(rng));
  EXPECT_LT(mean_confidence_interval(s, 0.90).half_width,
            mean_confidence_interval(s, 0.99).half_width);
}

}  // namespace
}  // namespace mec::stats

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"
#include "mec/stats/confidence.hpp"
#include "mec/stats/histogram.hpp"
#include "mec/stats/summary.hpp"

namespace mec::stats {
namespace {

TEST(RunningSummary, MatchesBatchFormulas) {
  const std::vector<double> data{1.0, 4.0, 2.0, 8.0, 5.0};
  RunningSummary s;
  for (const double v : data) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), mean(data));
  EXPECT_NEAR(s.variance(), variance(data), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningSummary, ContractsOnInsufficientData) {
  RunningSummary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  s.add(1.0);
  EXPECT_NO_THROW(s.mean());
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningSummary, MergeEqualsSequentialAccumulation) {
  random::Xoshiro256 rng(1);
  RunningSummary all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = random::uniform(rng, -2.0, 7.0);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningSummary, MergeWithEmptyIsIdentity) {
  RunningSummary a, empty;
  a.add(3.0);
  a.add(5.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), m);
}

TEST(RunningSummary, IsStableForLargeOffsets) {
  // Welford must not lose the variance of tiny fluctuations on a huge mean.
  RunningSummary s;
  for (int i = 0; i < 1000; ++i)
    s.add(1e12 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.0, 1e-2);
}

TEST(TimeAverage, WeighsByDuration) {
  const std::vector<double> values{2.0, 10.0};
  const std::vector<double> durations{3.0, 1.0};
  EXPECT_DOUBLE_EQ(time_average(values, durations), 4.0);
  EXPECT_THROW(time_average(values, std::vector<double>{1.0}),
               ContractViolation);
  EXPECT_THROW(time_average(values, std::vector<double>{0.0, 0.0}),
               ContractViolation);
}

TEST(HistogramTest, BinsAndClampsCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);
  h.add(3.0);
  h.add(9.99);
  h.add(42.0);   // clamps into last bin
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.mass(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_left_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.density(0), 0.2);
  EXPECT_THROW(h.count(5), ContractViolation);
}

TEST(HistogramTest, MassSumsToOne) {
  Histogram h(0.0, 1.0, 7);
  random::Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) h.add(random::uniform01(rng));
  double total = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) total += h.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.99), 2.326347874, 1e-6);   // 98% two-sided
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_THROW(normal_quantile(0.0), ContractViolation);
  EXPECT_THROW(normal_quantile(1.0), ContractViolation);
}

TEST(NormalQuantile, IsSymmetricAndMonotone) {
  for (const double p : {0.6, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
  double prev = normal_quantile(0.01);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(StudentTQuantile, MatchesTableValues) {
  // Standard t-table: t_{0.975} at various dof.
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.228, 6e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.042, 3e-3);
  EXPECT_NEAR(student_t_quantile(0.99, 20), 2.528, 8e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 5), 2.015, 2e-2);
}

TEST(StudentTQuantile, SmallDofMatchesClassicTable) {
  // The dof where the Cornish–Fisher expansion used to be badly wrong:
  // it gave ~7.6 instead of 12.706 at dof=1 and ~3.6 instead of 4.303 at
  // dof=2, shrinking every R<=5 replication interval.
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 2), 4.303, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 3), 3.182, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 4), 2.776, 1e-3);
}

TEST(StudentTQuantile, GoldenTableDof1To30) {
  // Reference quantiles computed with mpmath (50-digit arithmetic) at
  // p in {0.95, 0.975, 0.995} for dof 1..30.  The issue's acceptance bar is
  // 1e-3 relative error; the incomplete-beta inversion delivers ~1e-9, so
  // assert 1e-6 to leave headroom for libm differences.
  static const double kGolden[30][3] = {
      {6.313751515, 12.70620474, 63.65674116},
      {2.91998558, 4.30265273, 9.924843201},
      {2.353363435, 3.182446305, 5.84090931},
      {2.131846786, 2.776445105, 4.604094871},
      {2.015048373, 2.570581836, 4.032142984},
      {1.943180281, 2.446911851, 3.707428021},
      {1.894578605, 2.364624252, 3.499483297},
      {1.859548038, 2.306004135, 3.355387331},
      {1.833112933, 2.262157163, 3.249835542},
      {1.812461123, 2.228138852, 3.169272673},
      {1.795884819, 2.20098516, 3.105806516},
      {1.782287556, 2.17881283, 3.054539589},
      {1.770933396, 2.160368656, 3.012275839},
      {1.761310136, 2.144786688, 2.976842734},
      {1.753050356, 2.131449546, 2.946712883},
      {1.745883676, 2.119905299, 2.920781622},
      {1.739606726, 2.109815578, 2.89823052},
      {1.734063607, 2.10092204, 2.878440473},
      {1.729132812, 2.093024054, 2.860934606},
      {1.724718243, 2.085963447, 2.84533971},
      {1.720742903, 2.079613845, 2.831359558},
      {1.717144374, 2.073873068, 2.818756061},
      {1.713871528, 2.06865761, 2.807335684},
      {1.71088208, 2.063898562, 2.796939505},
      {1.708140761, 2.059538553, 2.787435814},
      {1.70561792, 2.055529439, 2.778714533},
      {1.703288446, 2.051830516, 2.770682957},
      {1.701130934, 2.048407142, 2.763262455},
      {1.699127027, 2.045229642, 2.756385904},
      {1.697260887, 2.042272456, 2.749995654}};
  static const double kLevels[3] = {0.95, 0.975, 0.995};
  for (std::size_t dof = 1; dof <= 30; ++dof) {
    for (int j = 0; j < 3; ++j) {
      const double expected = kGolden[dof - 1][j];
      const double actual = student_t_quantile(kLevels[j], dof);
      EXPECT_NEAR(actual / expected, 1.0, 1e-6)
          << "dof=" << dof << " p=" << kLevels[j];
    }
  }
}

TEST(StudentTQuantile, LowerTailMirrorsUpperTail) {
  for (const std::size_t dof : {std::size_t{1}, std::size_t{3},
                                std::size_t{7}, std::size_t{25}}) {
    EXPECT_NEAR(student_t_quantile(0.025, dof),
                -student_t_quantile(0.975, dof), 1e-9);
    EXPECT_NEAR(student_t_quantile(0.5, dof), 0.0, 1e-12);
  }
}

TEST(NormalQuantile, ExtremeTailsStayFinite) {
  // The Halley refinement multiplies by exp(x^2/2), which overflows past
  // |x| ~ 37.6; the guard must keep the Acklam estimate instead of
  // producing inf/nan.  Reference values from mpmath: Phi^{-1}(1e-300) and
  // Phi^{-1} of the largest double below 1 (1 - 2^-53, which is what the
  // literal 1 - 1e-16 rounds to).
  const double lo = normal_quantile(1e-300);
  EXPECT_TRUE(std::isfinite(lo));
  EXPECT_NEAR(lo, -37.0470962993612, 1e-6);
  const double hi = normal_quantile(1.0 - 1e-16);
  EXPECT_TRUE(std::isfinite(hi));
  EXPECT_NEAR(hi, 8.20953615160139, 1e-6);
}

TEST(StudentTQuantile, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975),
              1e-4);
}

TEST(StudentTQuantile, ExceedsNormalForSmallDof) {
  EXPECT_GT(student_t_quantile(0.975, 5), normal_quantile(0.975));
}

TEST(MeanConfidenceInterval, BasicGeometry) {
  RunningSummary s;
  for (int i = 0; i < 1000; ++i) s.add(i % 2 == 0 ? 9.0 : 11.0);
  const ConfidenceInterval ci = mean_confidence_interval(s, 0.98);
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_FALSE(ci.contains(11.0));
  EXPECT_NEAR(ci.upper() - ci.lower(), 2.0 * ci.half_width, 1e-12);
}

TEST(MeanConfidenceInterval, CoversTheTrueMeanAtNominalRate) {
  // 500 experiments, each a 98% CI over 200 uniform samples: coverage should
  // be near 0.98.
  random::Xoshiro256 rng(3);
  int covered = 0;
  const int experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    RunningSummary s;
    for (int i = 0; i < 200; ++i) s.add(random::uniform(rng, 0.0, 2.0));
    covered += mean_confidence_interval(s, 0.98).contains(1.0);
  }
  EXPECT_NEAR(static_cast<double>(covered) / experiments, 0.98, 0.03);
}

TEST(MeanConfidenceInterval, WiderAtHigherConfidence) {
  RunningSummary s;
  random::Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) s.add(random::uniform01(rng));
  EXPECT_LT(mean_confidence_interval(s, 0.90).half_width,
            mean_confidence_interval(s, 0.99).half_width);
}

TEST(MeanConfidenceInterval, SmallRCoverageMatchesNominal) {
  // The regression this PR fixes: with the old Cornish–Fisher quantile the
  // dof=2 multiplier was ~3.4 instead of 4.303, so 95% intervals over R=3
  // replications covered the true mean only ~93% of the time.  20000 trials
  // give a standard error of ~0.0015 on the coverage estimate, so a 0.01
  // tolerance separates the buggy ~0.93 from the nominal 0.95.
  random::Xoshiro256 rng(5);
  for (const int replications : {3, 5}) {
    int covered = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      RunningSummary s;
      for (int r = 0; r < replications; ++r)
        s.add(random::standard_normal(rng));
      covered += mean_confidence_interval(s, 0.95).contains(0.0);
    }
    EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.01)
        << "R=" << replications;
  }
}

TEST(PairedDifferenceInterval, MatchesIntervalOfDifferences) {
  const std::vector<double> a{1.4, 2.6, 3.5, 4.5, 5.2};
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};
  RunningSummary diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  const ConfidenceInterval expected = mean_confidence_interval(diff, 0.95);
  const ConfidenceInterval ci = paired_difference_interval(a, b, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, expected.mean);
  EXPECT_DOUBLE_EQ(ci.half_width, expected.half_width);
  EXPECT_THROW(paired_difference_interval(a, std::vector<double>{1.0}, 0.95),
               ContractViolation);
}

TEST(AlphaSpending, GeometricScheduleIsBoundedByAlpha) {
  EXPECT_DOUBLE_EQ(alpha_spending_level(0.05, 1), 0.025);
  EXPECT_DOUBLE_EQ(alpha_spending_level(0.05, 2), 0.0125);
  double total = 0.0;
  for (std::size_t look = 1; look <= 60; ++look) {
    const double level = alpha_spending_level(0.05, look);
    EXPECT_GT(level, 0.0);
    total += level;
  }
  EXPECT_LE(total, 0.05 + 1e-15);
  // Deep looks underflow gracefully instead of producing 0 or a denormal
  // that breaks the quantile's domain contract.
  EXPECT_GT(alpha_spending_level(0.05, 2000), 0.0);
}

TEST(SpendingAdjustedQuantile, WidensWithLooksAndStaysFinite) {
  // Every interim look must pay a premium over the fixed-sample quantile,
  // and the premium grows with the look index.
  const double fixed = student_t_quantile(0.975, 7);
  double prev = fixed;
  for (std::size_t look = 1; look <= 40; ++look) {
    const double q = spending_adjusted_quantile(0.95, look, 7);
    EXPECT_TRUE(std::isfinite(q)) << "look=" << look;
    EXPECT_GT(q, prev) << "look=" << look;
    prev = q;
  }
}

}  // namespace
}  // namespace mec::stats

// Cross-module consistency: the four independent routes to the equilibrium
// (population bisection, QMC mean-field integral, DTU iteration, fluid ODE)
// must agree on every scenario x seed cell, and the analytic, CTMC, and DES
// layers must tell the same story about any threshold vector.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/fluid_model.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/phase_type.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace mec {
namespace {

using Cell = std::tuple<population::LoadRegime, std::uint64_t>;

class EquilibriumRoutesTest : public ::testing::TestWithParam<Cell> {};

TEST_P(EquilibriumRoutesTest, AllFourRoutesAgree) {
  const auto [regime, seed] = GetParam();
  const auto pop = population::sample_population(
      population::theoretical_scenario(regime, 1500), seed);
  const auto& cfg = pop.config;

  // Route 1: bisection on the sampled population.
  const double bisect =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  // Route 2: the distributed algorithm.
  core::AnalyticUtilization source(pop.users, cfg.capacity);
  core::DtuOptions opt;
  opt.epsilon = 0.005;
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);
  ASSERT_TRUE(dtu.converged);

  // Route 3: the fluid ODE.
  core::FluidOptions fopt;
  fopt.horizon = 60.0;
  fopt.dt = 0.2;
  const double fluid =
      core::fluid_trajectory(pop.users, cfg.delay, cfg.capacity, fopt)
          .back()
          .y;

  EXPECT_NEAR(dtu.final_gamma, bisect, 0.02);
  EXPECT_NEAR(fluid, bisect, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, EquilibriumRoutesTest,
    ::testing::Combine(
        ::testing::Values(population::LoadRegime::kBelowService,
                          population::LoadRegime::kAtService,
                          population::LoadRegime::kAboveService),
        ::testing::Values(1u, 2u)));

class AnalyticCtmcConsistencyTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(AnalyticCtmcConsistencyTest, GeometricAndCtmcSolversAgree) {
  const auto [a, s, x] = GetParam();
  const queueing::TroMetrics geo = queueing::tro_metrics(a / s, x);
  const queueing::TroMetrics ctmc = queueing::tro_metrics_phase_type(
      a, queueing::exponential_phase(s), x);
  EXPECT_NEAR(geo.mean_queue_length, ctmc.mean_queue_length, 1e-8);
  EXPECT_NEAR(geo.offload_probability, ctmc.offload_probability, 1e-9);
  EXPECT_NEAR(geo.p_empty, ctmc.p_empty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticCtmcConsistencyTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 5.0),
                       ::testing::Values(1.0, 3.0),
                       ::testing::Values(0.75, 2.0, 4.5)));

TEST(CrossConsistency, PracticalScenarioRoutesAgreeToo) {
  const auto pop = population::sample_population(
      population::practical_scenario(population::LoadRegime::kAtService, 800),
      9);
  const auto& cfg = pop.config;
  const double bisect =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  core::FluidOptions fopt;
  fopt.horizon = 60.0;
  fopt.dt = 0.2;
  const double fluid =
      core::fluid_trajectory(pop.users, cfg.delay, cfg.capacity, fopt)
          .back()
          .y;
  EXPECT_NEAR(fluid, bisect, 0.005);
}

}  // namespace
}  // namespace mec

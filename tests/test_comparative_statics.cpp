// Comparative statics of the equilibrium: how gamma* responds to shifts in
// each model primitive.  These are the qualitative predictions a reviewer
// would sanity-check the theory against; each one follows from Lemma 1 plus
// monotonicity of the best response, and each is verified on sampled
// populations by shifting one primitive at a time.
#include <gtest/gtest.h>

#include <vector>

#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace mec::core {
namespace {

std::vector<UserParams> base_population(std::size_t n = 2000) {
  return population::sample_population(
             population::theoretical_scenario(
                 population::LoadRegime::kAtService, n),
             777)
      .users;
}

double mfne_of(const std::vector<UserParams>& users, double capacity = 10.0) {
  return solve_mfne(users, make_reciprocal_delay(), capacity).gamma_star;
}

TEST(ComparativeStatics, HigherOffloadLatencyLowersEquilibriumUtilization) {
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.offload_latency += 1.0;
  EXPECT_LT(mfne_of(users), base);
}

TEST(ComparativeStatics, HigherOffloadEnergyLowersEquilibriumUtilization) {
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.energy_offload += 1.0;
  EXPECT_LT(mfne_of(users), base);
}

TEST(ComparativeStatics, HigherLocalEnergyRaisesEquilibriumUtilization) {
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.energy_local += 1.0;
  EXPECT_GT(mfne_of(users), base);
}

TEST(ComparativeStatics, FasterLocalCpusLowerEquilibriumUtilization) {
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.service_rate *= 1.5;
  EXPECT_LT(mfne_of(users), base);
}

TEST(ComparativeStatics, HeavierLoadRaisesEquilibriumUtilization) {
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.arrival_rate *= 1.2;
  EXPECT_GT(mfne_of(users), base);
}

TEST(ComparativeStatics, LargerEnergyWeightMovesTowardsCheaperSide) {
  // With p_L drawn from U(0,3) and p_E from U(0,1), local processing is on
  // average the energy-expensive side, so emphasizing energy (larger w)
  // pushes work to the edge.
  auto users = base_population();
  const double base = mfne_of(users);
  for (auto& u : users) u.weight *= 3.0;
  EXPECT_GT(mfne_of(users), base);
}

TEST(ComparativeStatics, UtilizationIsMonotoneInCapacityBothWays) {
  // gamma* (a fraction of capacity) falls as c grows, but the *absolute*
  // edge throughput gamma* x c rises (cheaper edge attracts more work).
  const auto users = base_population();
  const double g8 = mfne_of(users, 8.0);
  const double g12 = mfne_of(users, 12.0);
  const double g16 = mfne_of(users, 16.0);
  EXPECT_GT(g8, g12);
  EXPECT_GT(g12, g16);
  EXPECT_LT(g8 * 8.0, g12 * 12.0 + 1e-9);
  EXPECT_LT(g12 * 12.0, g16 * 16.0 + 1e-9);
}

TEST(ComparativeStatics, EquilibriumThresholdsShiftWithLatency) {
  // Individual-level check: raising one user's latency can only raise that
  // user's own equilibrium threshold (everyone else's stays put because a
  // single user is negligible at N=2000 -- gamma* moves by O(1/N)).
  auto users = base_population();
  const EdgeDelay delay = make_reciprocal_delay();
  const MfneResult before = solve_mfne(users, delay, 10.0);
  users[17].offload_latency += 5.0;
  const MfneResult after = solve_mfne(users, delay, 10.0);
  EXPECT_GE(after.thresholds[17], before.thresholds[17]);
  EXPECT_NEAR(after.gamma_star, before.gamma_star, 1e-3);
}

}  // namespace
}  // namespace mec::core

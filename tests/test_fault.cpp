// Fault-injection subsystem tests: schedule construction and validation,
// text parsing, the engine's degraded-mode semantics (crash queue loss,
// outage modes, churn identity), deterministic bit-identical replay across
// workspaces and thread counts, and the closed-loop DTU re-converging to
// the degraded equilibrium after a mid-horizon capacity drop.
#include "mec/fault/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/fault/fault_text.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::fault {
namespace {

std::vector<core::UserParams> homogeneous(std::size_t n, double a, double s,
                                          double tau = 0.5) {
  std::vector<core::UserParams> users(n);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = tau;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  return users;
}

sim::SimulationOptions base_options(std::uint64_t seed = 3) {
  sim::SimulationOptions o;
  o.warmup = 20.0;
  o.horizon = 300.0;
  o.seed = seed;
  o.fixed_gamma = 0.2;
  return o;
}

core::EdgeDelay delay() { return core::make_reciprocal_delay(1.1); }

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, SortsByTimeKeepingInsertionOrder) {
  FaultSchedule s;
  s.add_capacity_scale(10.0, 0.5);
  s.add_crash(5.0, 1);
  s.add_capacity_scale(10.0, 0.8);  // same time, inserted later
  s.add_restart(7.0, 1);
  const auto a = s.actions();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].kind, FaultKind::kDeviceCrash);
  EXPECT_EQ(a[1].kind, FaultKind::kDeviceRestart);
  EXPECT_DOUBLE_EQ(a[2].value, 0.5);  // first of the two t=10 actions
  EXPECT_DOUBLE_EQ(a[3].value, 0.8);
}

TEST(FaultSchedule, BuildersRejectInvalidArguments) {
  FaultSchedule s;
  EXPECT_THROW(s.add_capacity_scale(-1.0, 0.5), ContractViolation);
  EXPECT_THROW(s.add_capacity_scale(1.0, 0.0), ContractViolation);
  EXPECT_THROW(s.add_outage(5.0, 5.0), ContractViolation);
  EXPECT_THROW(s.add_outage(5.0, 4.0), ContractViolation);
  EXPECT_THROW(s.add_outage(0.0, 1.0, OutageMode::kPenalty, -0.1),
               ContractViolation);
  EXPECT_THROW(s.add_user_departure(1.0, 1.0), ContractViolation);
  EXPECT_THROW(s.add_user_departure(1.0, -0.1), ContractViolation);
}

TEST(FaultSchedule, CheckValidatesDeviceTargetsAndOutageNesting) {
  FaultSchedule ok;
  ok.add_outage(1.0, 2.0);
  ok.add_outage(3.0, 4.0);
  ok.add_crash(1.0, 4);
  EXPECT_NO_THROW(ok.check(5));
  EXPECT_THROW(ok.check(4), ContractViolation);  // crash target out of range

  FaultSchedule overlapping;
  overlapping.add_outage(1.0, 5.0);
  overlapping.add_outage(4.0, 6.0);
  EXPECT_THROW(overlapping.check(1), ContractViolation);
}

TEST(FaultSchedule, CapacityScaleAtWalksTheTrajectory) {
  FaultSchedule s;
  s.add_capacity_scale(10.0, 0.6);
  s.add_capacity_scale(20.0, 1.0);
  EXPECT_DOUBLE_EQ(s.capacity_scale_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.capacity_scale_at(10.0), 0.6);
  EXPECT_DOUBLE_EQ(s.capacity_scale_at(15.0), 0.6);
  EXPECT_DOUBLE_EQ(s.capacity_scale_at(25.0), 1.0);
}

TEST(FaultSchedule, PoissonChurnIsDeterministicInItsSeed) {
  const auto scenario = population::theoretical_scenario(
      population::LoadRegime::kAtService, 100);
  FaultSchedule a, b, c;
  a.add_poisson_churn(scenario, 0.5, 0.3, 0.0, 200.0, 42);
  b.add_poisson_churn(scenario, 0.5, 0.3, 0.0, 200.0, 42);
  c.add_poisson_churn(scenario, 0.5, 0.3, 0.0, 200.0, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.actions()[i].time, b.actions()[i].time);
    EXPECT_EQ(a.actions()[i].kind, b.actions()[i].kind);
  }
  const auto ua = a.churn_users(), ub = b.churn_users();
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i)
    EXPECT_DOUBLE_EQ(ua[i].arrival_rate, ub[i].arrival_rate);
  // A different seed materializes a different trajectory.
  EXPECT_TRUE(c.size() != a.size() ||
              c.actions()[0].time != a.actions()[0].time);
}

// ------------------------------------------------------------------ parser

TEST(FaultText, ParsesEveryVerbAndComments) {
  const auto scenario = population::theoretical_scenario(
      population::LoadRegime::kAtService, 100);
  const FaultSchedule s = parse_fault_schedule(
      "# header comment\n"
      "capacity 150 0.6\n"
      "outage 50 60 reject   # trailing comment\n"
      "outage 80 90 penalty 0.5\n"
      "\n"
      "crash 10 3\n"
      "restart 40 3\n"
      "churn 0 100 0.4 0.2 7\n",
      &scenario);
  EXPECT_NO_THROW(s.check(100));
  EXPECT_GE(s.size(), 7u);  // churn adds a stochastic number of actions
  EXPECT_DOUBLE_EQ(s.capacity_scale_at(200.0), 0.6);
}

TEST(FaultText, ReportsLineNumberedErrors) {
  const auto expect_fails = [](const std::string& text) {
    EXPECT_THROW(parse_fault_schedule(text), RuntimeError) << text;
  };
  expect_fails("capacity\n");                  // missing args
  expect_fails("capacity 10 0\n");             // invalid scale
  expect_fails("capacity ten 0.5\n");          // not a number
  expect_fails("outage 10 5 reject\n");        // end before begin
  expect_fails("outage 1 2 maybe\n");          // unknown mode
  expect_fails("warp 1 2\n");                  // unknown verb
  expect_fails("churn 0 10 0.5 0.5 7\n");      // churn without a scenario
  try {
    parse_fault_schedule("capacity 10 0.5\nbogus line\n");
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(FaultText, MissingFileThrows) {
  EXPECT_THROW(load_fault_schedule_file("/nonexistent/x.fault"),
               RuntimeError);
}

// ------------------------------------------------------------------ engine

TEST(FaultEngine, EmptyOrNullScheduleIsBitIdenticalToNone) {
  const auto users = homogeneous(32, 2.0, 2.0);
  const std::vector<double> xs(users.size(), 1.5);

  sim::SimulationOptions plain = base_options();
  const auto r_none =
      sim::MecSimulation(users, 10.0, delay(), plain).run_tro(xs);

  sim::SimulationOptions with_empty = base_options();
  with_empty.faults = std::make_shared<const FaultSchedule>();
  const auto r_empty =
      sim::MecSimulation(users, 10.0, delay(), with_empty).run_tro(xs);

  EXPECT_EQ(r_none.total_events, r_empty.total_events);
  EXPECT_DOUBLE_EQ(r_none.measured_utilization, r_empty.measured_utilization);
  EXPECT_DOUBLE_EQ(r_none.mean_cost, r_empty.mean_cost);
  EXPECT_DOUBLE_EQ(r_none.mean_queue_length, r_empty.mean_queue_length);
  EXPECT_FALSE(r_empty.faults.any());
}

TEST(FaultEngine, ReplaysBitIdenticallyAcrossWorkspacesAndRuns) {
  const auto users = homogeneous(24, 2.5, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_capacity_scale(100.0, 0.5);
  schedule->add_outage(50.0, 70.0, OutageMode::kPenalty, 0.4);
  schedule->add_crash(40.0, 3);
  schedule->add_restart(90.0, 3);
  const auto scenario = population::theoretical_scenario(
      population::LoadRegime::kAtService, 24);
  schedule->add_poisson_churn(scenario, 0.1, 0.05, 0.0, 300.0, 5);

  sim::SimulationOptions o = base_options(7);
  o.faults = schedule;
  sim::MecSimulation des(users, 10.0, delay(), o);
  std::vector<double> all_xs(des.total_devices(), 1.0);

  sim::SimWorkspace w;
  const auto r1 = des.run_tro(all_xs, w);
  const auto r2 = des.run_tro(all_xs, w);   // workspace reuse
  const auto r3 = des.run_tro(all_xs);      // fresh workspace
  for (const auto* r : {&r2, &r3}) {
    EXPECT_EQ(r1.total_events, r->total_events);
    EXPECT_DOUBLE_EQ(r1.measured_utilization, r->measured_utilization);
    EXPECT_DOUBLE_EQ(r1.mean_cost, r->mean_cost);
    EXPECT_EQ(r1.faults.tasks_lost, r->faults.tasks_lost);
    EXPECT_EQ(r1.faults.churn_joined, r->faults.churn_joined);
  }
}

TEST(FaultEngine, ReplicationAggregatesBitIdenticalForAnyThreadCount) {
  const auto users = homogeneous(20, 2.5, 2.0);
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_capacity_scale(120.0, 0.6);
  schedule->add_outage(60.0, 80.0, OutageMode::kReject);
  const auto scenario = population::theoretical_scenario(
      population::LoadRegime::kAtService, 20);
  schedule->add_poisson_churn(scenario, 0.08, 0.04, 0.0, 300.0, 9);

  sim::SimulationOptions o = base_options(13);
  o.faults = schedule;
  const std::vector<double> xs(users.size() + schedule->churn_arrivals(), 1.0);

  parallel::ReplicationOptions ro;
  ro.replications = 8;
  ro.confidence = 0.95;
  parallel::ReplicationResult by_threads[3];
  std::size_t i = 0;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ro.threads = threads;
    by_threads[i++] =
        parallel::run_replications(users, 10.0, delay(), o, xs, ro);
  }
  for (std::size_t k = 1; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(by_threads[0].mean_cost.mean(),
                     by_threads[k].mean_cost.mean());
    EXPECT_DOUBLE_EQ(by_threads[0].measured_utilization.mean(),
                     by_threads[k].measured_utilization.mean());
    EXPECT_DOUBLE_EQ(by_threads[0].mean_queue_length.ci.half_width,
                     by_threads[k].mean_queue_length.ci.half_width);
    EXPECT_EQ(by_threads[0].total_events, by_threads[k].total_events);
    EXPECT_EQ(by_threads[0].faults.tasks_lost, by_threads[k].faults.tasks_lost);
    EXPECT_EQ(by_threads[0].faults.offloads_rejected,
              by_threads[k].faults.offloads_rejected);
  }
  EXPECT_TRUE(by_threads[0].faults.any());
}

TEST(FaultEngine, CrashDropsQueueAndStopsArrivalsUntilRestart) {
  // Local-only devices (huge threshold): queues are never empty for long at
  // theta > 1, so a crash must lose tasks and silence the device.
  const auto users = homogeneous(4, 3.0, 2.0);
  const std::vector<double> xs(users.size(), 50.0);

  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_crash(100.0, 0);
  sim::SimulationOptions o = base_options();
  o.faults = schedule;
  const auto crashed = sim::MecSimulation(users, 10.0, delay(), o).run_tro(xs);
  EXPECT_EQ(crashed.faults.crashes, 1u);
  EXPECT_EQ(crashed.faults.restarts, 0u);
  EXPECT_GT(crashed.faults.tasks_lost, 0u);
  // Device 0 stopped at t=100 of [20, 320]; device 1 ran the whole window.
  EXPECT_LT(crashed.devices[0].arrivals, crashed.devices[1].arrivals / 2);

  auto restart_schedule = std::make_shared<FaultSchedule>();
  restart_schedule->add_crash(100.0, 0);
  restart_schedule->add_restart(150.0, 0);
  sim::SimulationOptions o2 = base_options();
  o2.faults = restart_schedule;
  const auto restarted =
      sim::MecSimulation(users, 10.0, delay(), o2).run_tro(xs);
  EXPECT_EQ(restarted.faults.restarts, 1u);
  EXPECT_GT(restarted.devices[0].arrivals, crashed.devices[0].arrivals);
}

TEST(FaultEngine, OutageRejectForcesLocalExecution) {
  // Threshold 0 offloads everything; a full-window reject outage must
  // reroute every arrival to the local queue.
  const auto users = homogeneous(8, 2.0, 2.0);
  const std::vector<double> xs(users.size(), 0.0);
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_outage(0.0, 1000.0, OutageMode::kReject);
  sim::SimulationOptions o = base_options();
  o.faults = schedule;
  const auto r = sim::MecSimulation(users, 10.0, delay(), o).run_tro(xs);
  EXPECT_DOUBLE_EQ(r.mean_offload_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.measured_utilization, 0.0);
  EXPECT_GT(r.faults.offloads_rejected, 0u);
  EXPECT_GT(r.mean_queue_length, 0.0);
}

TEST(FaultEngine, OutagePenaltyAddsExactLatency) {
  // Deterministic latency + fixed gamma: every offload delay is exactly
  // tau + g(gamma) + penalty during the outage.
  const auto users = homogeneous(4, 2.0, 2.0, 0.25);
  const std::vector<double> xs(users.size(), 0.0);
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_outage(0.0, 1000.0, OutageMode::kPenalty, 0.75);
  sim::SimulationOptions o = base_options();
  o.latency = sim::deterministic_latency();
  o.faults = schedule;
  const auto r = sim::MecSimulation(users, 10.0, delay(), o).run_tro(xs);
  const double expected = 0.25 + delay()(0.2) + 0.75;
  for (const auto& d : r.devices)
    EXPECT_NEAR(d.mean_offload_delay, expected, 1e-12);
  EXPECT_GT(r.faults.offloads_penalized, 0u);
}

TEST(FaultEngine, ChurnJoinsAndDeparturesAdjustThePopulation) {
  const auto users = homogeneous(10, 2.0, 2.0);
  auto schedule = std::make_shared<FaultSchedule>();
  core::UserParams joiner = users[0];
  joiner.arrival_rate = 4.0;
  schedule->add_user_arrival(50.0, joiner);
  schedule->add_user_arrival(60.0, joiner);
  schedule->add_user_departure(100.0, 0.0);
  sim::SimulationOptions o = base_options();
  o.faults = schedule;
  sim::MecSimulation des(users, 10.0, delay(), o);
  EXPECT_EQ(des.total_devices(), 12u);
  EXPECT_EQ(des.initial_devices(), 10u);

  // Thresholds must cover the joiners.
  const std::vector<double> too_short(10, 1.0);
  EXPECT_THROW(des.run_tro(too_short), ContractViolation);

  const std::vector<double> xs(12, 1.0);
  const auto r = des.run_tro(xs);
  EXPECT_EQ(r.faults.churn_joined, 2u);
  EXPECT_EQ(r.faults.churn_departed, 1u);
  EXPECT_EQ(r.faults.participating_devices, 12u);
  ASSERT_EQ(r.devices.size(), 12u);
  EXPECT_GT(r.devices[10].arrivals, 0u);  // joiner generated traffic
  EXPECT_GT(r.devices[11].arrivals, 0u);
}

TEST(FaultEngine, NeverJoinedChurnSlotsDoNotDiluteMeans) {
  const auto users = homogeneous(6, 2.0, 2.0);
  auto schedule = std::make_shared<FaultSchedule>();
  core::UserParams joiner = users[0];
  schedule->add_user_arrival(1e6, joiner);  // far beyond the horizon
  sim::SimulationOptions o = base_options();
  o.faults = schedule;
  sim::MecSimulation des(users, 10.0, delay(), o);
  const std::vector<double> xs(7, 1.0);
  const auto r = des.run_tro(xs);
  EXPECT_EQ(r.faults.churn_joined, 0u);
  EXPECT_EQ(r.faults.participating_devices, 6u);
  EXPECT_EQ(r.devices[6].arrivals, 0u);

  // Same population without the phantom slot: identical means.
  sim::SimulationOptions plain = base_options();
  const auto r_plain =
      sim::MecSimulation(users, 10.0, delay(), plain)
          .run_tro(std::vector<double>(6, 1.0));
  EXPECT_DOUBLE_EQ(r.mean_cost, r_plain.mean_cost);
  EXPECT_DOUBLE_EQ(r.mean_queue_length, r_plain.mean_queue_length);
}

TEST(FaultEngine, CapacityDropRaisesUtilizationEstimateAndTimeline) {
  const auto users = homogeneous(16, 3.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_capacity_scale(160.0, 0.5);
  sim::SimulationOptions o = base_options();
  o.fixed_gamma.reset();  // live EWMA: the estimate must react to the drop
  o.initial_gamma = 0.2;
  o.sample_interval = 5.0;
  o.faults = schedule;
  const auto r = sim::MecSimulation(users, 10.0, delay(), o).run_tro(xs);

  EXPECT_DOUBLE_EQ(r.faults.min_capacity_scale, 0.5);
  // Window [20, 320]: scale 1.0 for 140 s then 0.5 for 160 s.
  EXPECT_NEAR(r.faults.mean_capacity_scale, (140.0 + 80.0) / 300.0, 1e-9);
  EXPECT_NEAR(r.faults.degraded_time, 160.0, 1e-9);

  double before = 0.0, after = 0.0;
  for (const auto& p : r.timeline) {
    if (p.time < 160.0) before = p.utilization_estimate;
    if (p.time == 200.0) after = p.utilization_estimate;
    // The sample at exactly t=160 is drawn before the equal-time fault
    // applies, so it still reports the nominal scale.
    EXPECT_DOUBLE_EQ(p.capacity_scale, p.time <= 160.0 ? 1.0 : 0.5);
    EXPECT_EQ(p.active_devices, 16u);
  }
  // Halving the capacity roughly doubles the utilization estimate.
  EXPECT_GT(after, 1.5 * before);
}

// ------------------------------------------------- closed-loop reconvergence

TEST(FaultClosedLoop, DtuReconvergesToDegradedEquilibriumAfterBrownout) {
  const auto users = homogeneous(200, 2.5, 2.0, 0.4);
  const double capacity = 6.0;
  const auto g = delay();

  const double star_nominal =
      core::solve_mfne(users, g, capacity).gamma_star;
  const double star_degraded =
      core::solve_mfne(users, g, 0.6 * capacity).gamma_star;
  ASSERT_GT(std::abs(star_degraded - star_nominal), 0.05)
      << "brown-out too mild to distinguish the equilibria";

  auto schedule = std::make_shared<FaultSchedule>();
  schedule->add_capacity_scale(400.0, 0.6);

  sim::ClosedLoopOptions opt;
  opt.update_period = 5.0;
  opt.horizon = 900.0;
  opt.seed = 11;
  opt.faults = schedule;
  opt.resume_on_drift = true;
  const auto adaptive = run_closed_loop(users, capacity, g, opt);

  // The loop settled before the shock, re-opened, and tracked the degraded
  // equilibrium (regret-style check against the oracle on 0.6c).
  EXPECT_GE(adaptive.drift_resumes, 1u);
  EXPECT_NEAR(adaptive.final_gamma_hat, star_degraded, 0.06);

  // Without drift resumption Algorithm 1 stays frozen at the nominal
  // estimate and ends strictly farther from the degraded equilibrium.
  sim::ClosedLoopOptions frozen = opt;
  frozen.resume_on_drift = false;
  const auto stuck = run_closed_loop(users, capacity, g, frozen);
  EXPECT_EQ(stuck.drift_resumes, 0u);
  EXPECT_GT(std::abs(stuck.final_gamma_hat - star_degraded),
            std::abs(adaptive.final_gamma_hat - star_degraded));
}

}  // namespace
}  // namespace mec::fault

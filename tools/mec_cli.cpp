// mec — command-line explorer for the threshold-offloading library.
//
//   mec scenarios
//       List the built-in scenario presets.
//   mec mfne     --scenario=<name> --regime=<low|eq|high> [--n=..] [--seed=..]
//       Solve the Mean-Field Nash Equilibrium.
//   mec dtu      --scenario=.. --regime=.. [--eta0=..] [--epsilon=..]
//                [--async=<prob>] [--trace]
//       Run the Distributed Threshold Update algorithm and print the trace.
//   mec simulate --scenario=.. --regime=.. [--horizon=..] [--warmup=..]
//                [--service=<exp|erlang4|hyperexp4|empirical>]
//                [--replications=R] [--threads=T] [--confidence=0.95]
//                [--target-ci=W | --target-rel=F] [--max-replications=..]
//                [--wave=..] [--metric=..]
//       Simulate the MFNE thresholds in the discrete-event simulator.
//       With R > 1, runs R independent replications (seed_r = seed +
//       golden-ratio * (r+1)) across T threads and reports mean +/- CI;
//       the aggregate is bit-identical for every T.  With a --target-ci /
//       --target-rel, replications instead grow in waves until the metric's
//       CI half-width meets the target (sequential stopping); any stopped
//       run is replayable by --replications=<stopped R>.
//   mec compare  --scenario=.. --regime=..
//       DTU vs the probabilistic baselines on one population.
//
// Common flags: --n (population size), --seed, --capacity, --latency-mean.
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "mec/baseline/dpo.hpp"
#include "mec/common/error.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/fault/fault_text.hpp"
#include "mec/io/args.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/json.hpp"
#include "mec/io/table.hpp"
#include "mec/net/address.hpp"
#include "mec/net/worker.hpp"
#include "mec/obs/tail.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/parallel/sequential.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/population/scenario_text.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/cluster_policies.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using namespace mec;

constexpr const char* kUsage = R"(usage: mec <command> [flags]

commands:
  scenarios                      list scenario presets
  mfne      solve the Mean-Field Nash Equilibrium
  dtu       run the Distributed Threshold Update algorithm
  simulate  DES-validate the equilibrium thresholds
  closedloop  run Algorithm 1 live inside the simulator
  compare   DTU vs probabilistic baselines
  tail      view a .meclog telemetry stream (live or post-hoc)
  worker    serve simulation ranks to a remote coordinator over TCP

common flags:
  --scenario=<theoretical|comparison|practical>   (default theoretical)
  --config=<file.mec>            load a scenario config file instead
  --regime=<low|eq|high>                          (default eq)
  --n=<users> --seed=<seed> --capacity=<c> --latency-mean=<s>

sharded execution (simulate, closedloop):
  --shards=<k>                   partition one run's devices over k event
                                 queues (bit-identical for any k; default
                                 honors MEC_SHARDS, then 1)
  --transport=<inproc|process|tcp>  run shard legs in this process
                                 (default), in forked worker processes, or
                                 in `mec worker` daemons reached over TCP;
                                 results are byte-identical in every case
  --workers=<w>                  worker-process count for
                                 --transport=process (default 2, capped at
                                 the shard count)
  --workers=<host:port,...>      for --transport=tcp: one `mec worker`
                                 daemon address per rank

worker daemon:
  mec worker --listen=<host:port> [--max-runs=<n>] [--quiet=<0|1>]
                                 serve simulation ranks on host:port; one
                                 run per coordinator connection, forever
                                 unless --max-runs is set

multi-cluster edge (simulate):
  --clusters=<k>                 split the edge capacity over k clusters
                                 (device n feeds cluster n mod k; equal
                                 shares; default 1 = the classic model)
  --topology=<s0,s1,...>         explicit per-cluster capacity shares
                                 (must sum to 1; sets the cluster count)
  --policy=<tro|price|minority>  offloading policy family (default tro):
                                 price = per-cluster congestion prices,
                                 dual ascent toward --gamma-target;
                                 minority = minority-game server activation
  --gamma-target=<g> --update-period=<s>   price/minority controls

fault injection (simulate, closedloop):
  --fault-schedule=<file.fault>  deterministic fault/churn schedule
                                 (also embeddable as `fault = ...` lines of
                                 a --config file); closedloop then resumes
                                 Algorithm 1 on utilization drift, and
                                 --csv=<file> dumps the epoch trajectory.

sequential stopping (simulate):
  --target-ci=<w>                grow replications in waves until the CI
                                 half-width of --metric is <= w
  --target-rel=<f>               ... or <= f * |mean| (either or both)
  --metric=<mean-cost|queue-length|offload-fraction|utilization|
            local-sojourn|offload-delay>          (default mean-cost)
  --max-replications=<cap> --wave=<step>          (defaults 512, 8)
  --replications then sets the minimum before the first look

streaming telemetry (simulate, closedloop):
  --stream-log=<run.meclog>      stream windowed metrics + engine counters
                                 to a self-describing binary log; follow it
                                 live with `mec tail <run.meclog> --follow`
  --window=<seconds>             observation-grid spacing for the stream
                                 (and the in-memory timeline; default 1.0
                                 when --stream-log is set)
  --counters=<0|1>               engine-counter frames in the stream log
                                 (default 1; counters are wall-clock
                                 diagnostics — disable them when byte-
                                 comparing logs across shard counts or
                                 transports)

tail flags:
  mec tail <run.meclog> [--follow] [--check] [--interval=<ms>]
                        [--csv=<file>] [--hist-csv=<file>]
run `mec <command> --help` for command-specific flags.
)";

sim::TransportKind parse_transport(const std::string& name) {
  if (name == "inproc") return sim::TransportKind::kInProcess;
  if (name == "process") return sim::TransportKind::kProcess;
  if (name == "tcp") return sim::TransportKind::kTcp;
  throw RuntimeError("unknown --transport '" + name +
                     "' (inproc|process|tcp)");
}

/// Resolves the dual-grammar --workers flag: a count for
/// --transport=process, a host:port list for --transport=tcp, rejected for
/// inproc.  Fills `workers` or `worker_addresses` accordingly.
void parse_workers_flag(const io::Args& args, sim::TransportKind transport,
                        std::size_t& workers,
                        std::vector<std::string>& worker_addresses) {
  if (transport == sim::TransportKind::kTcp) {
    if (!args.has("workers"))
      throw RuntimeError(
          "--transport=tcp needs --workers=<host:port,host:port,...> (one "
          "mec worker daemon per rank)");
    for (const net::Address& a :
         net::parse_worker_list(args.get_string("workers", "")))
      worker_addresses.push_back(a.str());
    return;
  }
  if (args.has("workers") && transport != sim::TransportKind::kProcess)
    throw RuntimeError(
        "--workers only applies to --transport=process or --transport=tcp");
  workers = static_cast<std::size_t>(args.get_long("workers", 0));
}

population::LoadRegime parse_regime(const std::string& name) {
  if (name == "low") return population::LoadRegime::kBelowService;
  if (name == "eq") return population::LoadRegime::kAtService;
  if (name == "high") return population::LoadRegime::kAboveService;
  throw RuntimeError("unknown regime '" + name + "' (low|eq|high)");
}

population::ScenarioConfig build_scenario(const io::Args& args) {
  if (args.has("config")) {
    population::ScenarioConfig cfg =
        population::load_scenario_file(args.get_path("config"));
    if (args.has("n"))
      cfg.n_users = static_cast<std::size_t>(args.get_long("n", 1));
    if (args.has("capacity")) cfg.capacity = args.get_double("capacity", 0.0);
    cfg.check();
    return cfg;
  }
  const std::string name = args.get_string("scenario", "theoretical");
  const auto regime = parse_regime(args.get_string("regime", "eq"));
  const auto n = static_cast<std::size_t>(args.get_long("n", 0));

  population::ScenarioConfig cfg;
  if (name == "theoretical") {
    cfg = population::theoretical_scenario(regime, n ? n : 10000);
  } else if (name == "comparison") {
    cfg = population::theoretical_comparison_scenario(regime, n ? n : 1000);
  } else if (name == "practical") {
    cfg = population::practical_scenario(regime, n ? n : 1000,
                                         args.get_double("latency-mean", 0.4));
  } else {
    throw RuntimeError("unknown scenario '" + name +
                       "' (theoretical|comparison|practical)");
  }
  if (args.has("capacity")) cfg.capacity = args.get_double("capacity", 0.0);
  cfg.check();
  return cfg;
}

/// --clusters / --topology on top of the scenario's own cluster keys:
/// --topology fixes the shares (and the count); --clusters alone asks for
/// an equal split.
sim::ClusterTopology build_topology(const io::Args& args,
                                    const population::ScenarioConfig& cfg) {
  sim::ClusterTopology topology;
  topology.clusters = cfg.clusters;
  topology.shares = cfg.cluster_shares;
  if (args.has("topology")) {
    topology.shares.clear();
    std::string spec = args.get_string("topology", "");
    std::size_t start = 0;
    for (std::size_t i = 0; i <= spec.size(); ++i)
      if (i == spec.size() || spec[i] == ',') {
        const std::string token = spec.substr(start, i - start);
        start = i + 1;
        try {
          std::size_t pos = 0;
          const double share = std::stod(token, &pos);
          if (pos != token.size()) throw RuntimeError("trailing");
          topology.shares.push_back(share);
        } catch (const std::exception&) {
          throw RuntimeError("--topology expects comma-separated shares, got '" +
                             token + "'");
        }
      }
    topology.clusters = topology.shares.size();
  }
  if (args.has("clusters")) {
    const auto k = static_cast<std::size_t>(args.get_long("clusters", 1));
    if (args.has("topology")) {
      if (k != topology.clusters)
        throw RuntimeError("--clusters disagrees with the --topology share count");
    } else {
      topology.clusters = k;
      if (topology.shares.size() != k) topology.shares.clear();
    }
  }
  try {
    topology.check();
  } catch (const ContractViolation& e) {
    throw RuntimeError(std::string("invalid cluster topology: ") + e.what());
  }
  return topology;
}

const std::set<std::string> kCommonFlags = {
    "scenario", "regime", "n",    "seed",
    "capacity", "latency-mean",   "config", "help"};

/// Builds the fault schedule from --fault-schedule or the scenario's
/// embedded `fault =` lines; null when neither is present.
std::shared_ptr<const fault::FaultSchedule> build_faults(
    const io::Args& args, const population::ScenarioConfig& cfg) {
  if (args.has("fault-schedule"))
    return std::make_shared<const fault::FaultSchedule>(
        fault::load_fault_schedule_file(args.get_path("fault-schedule"),
                                        &cfg));
  if (!cfg.fault_lines.empty()) {
    std::string text;
    for (const std::string& line : cfg.fault_lines) {
      text += line;
      text += '\n';
    }
    return std::make_shared<const fault::FaultSchedule>(
        fault::parse_fault_schedule(text, &cfg));
  }
  return nullptr;
}

int cmd_scenarios() {
  io::TextTable table("built-in scenario presets");
  table.set_header({"name", "paper section", "N", "c", "notes"});
  table.add_row({"theoretical", "IV-A (Table I, Fig. 5)", "10000", "10",
                 "uniform marginals, T~U(0,1)"});
  table.add_row({"comparison", "IV-C (Table III)", "1000", "10",
                 "theoretical with T~U(0,5)"});
  table.add_row({"practical", "IV-B (Table II, Fig. 7)", "1000", "8.5",
                 "measured S/T datasets, E[S]=8.9437"});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_mfne(const io::Args& args) {
  auto known = kCommonFlags;
  known.insert("json");
  args.reject_unknown(known);
  const auto cfg = build_scenario(args);
  const auto pop = population::sample_population(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 42)));
  const core::MfneResult r =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  std::vector<double> xs(r.thresholds.begin(), r.thresholds.end());
  const double cost =
      core::average_cost(pop.users, xs, cfg.delay, r.gamma_star);
  double mean_x = 0.0;
  for (const auto x : r.thresholds) mean_x += static_cast<double>(x);
  mean_x /= static_cast<double>(pop.size());

  if (args.get_bool("json", false)) {
    const io::Json out = io::Json::object({
        {"scenario", io::Json::string(cfg.name)},
        {"n_users", io::Json::integer(static_cast<long long>(pop.size()))},
        {"capacity", io::Json::number(cfg.capacity)},
        {"gamma_star", io::Json::number(r.gamma_star)},
        {"best_response", io::Json::number(r.best_response_value)},
        {"bisection_steps", io::Json::integer(r.iterations)},
        {"average_cost", io::Json::number(cost)},
        {"mean_threshold", io::Json::number(mean_x)},
    });
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }
  std::printf("scenario: %s  N=%zu  c=%.2f\n", cfg.name.c_str(), pop.size(),
              cfg.capacity);
  std::printf("gamma* = %.6f   (V(gamma*) = %.6f, %d bisection steps)\n",
              r.gamma_star, r.best_response_value, r.iterations);
  std::printf("average cost at equilibrium = %.6f\n", cost);
  std::printf("mean equilibrium threshold  = %.3f\n", mean_x);
  return 0;
}

int cmd_dtu(const io::Args& args) {
  auto known = kCommonFlags;
  known.insert({"eta0", "epsilon", "async", "trace", "max-iterations"});
  args.reject_unknown(known);
  const auto cfg = build_scenario(args);
  const auto pop = population::sample_population(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 42)));

  core::DtuOptions opt;
  opt.eta0 = args.get_double("eta0", opt.eta0);
  opt.epsilon = args.get_double("epsilon", opt.epsilon);
  opt.max_iterations =
      static_cast<int>(args.get_long("max-iterations", opt.max_iterations));
  const double async = args.get_double("async", 1.0);
  if (async < 1.0) opt.update_gate = core::make_bernoulli_gate(async, 1);

  core::AnalyticUtilization source(pop.users, cfg.capacity);
  const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  std::printf("scenario: %s  N=%zu  eta0=%.3f  epsilon=%.3f  async=%.2f\n",
              cfg.name.c_str(), pop.size(), opt.eta0, opt.epsilon, async);
  std::printf("converged=%s after %d iterations\n", r.converged ? "yes" : "no",
              r.iterations);
  std::printf("gamma_hat = %.5f   true gamma = %.5f   MFNE gamma* = %.5f\n",
              r.final_gamma_hat, r.final_gamma, star);
  if (args.get_bool("trace", false)) {
    std::printf("\n  t   gamma_t    gamma_hat  eta\n");
    for (const auto& it : r.trace)
      std::printf("  %-3d %-10.5f %-10.5f %-8.5f\n", it.t, it.gamma,
                  it.gamma_hat, it.eta);
  }
  return 0;
}

int cmd_simulate(const io::Args& args) {
  auto known = kCommonFlags;
  known.insert({"horizon", "warmup", "service", "replications", "threads",
                "confidence", "fault-schedule", "shards", "stream-log",
                "window", "target-ci", "target-rel", "max-replications",
                "wave", "metric", "clusters", "topology", "policy",
                "gamma-target", "update-period", "transport", "workers",
                "counters"});
  args.reject_unknown(known);
  const auto cfg = build_scenario(args);
  const auto pop = population::sample_population(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 42)));
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  const auto faults = build_faults(args, cfg);
  const sim::ClusterTopology topology = build_topology(args, cfg);

  sim::SimulationOptions so;
  so.topology = topology;
  so.horizon = args.get_double("horizon", 200.0);
  so.warmup = args.get_double("warmup", 20.0);
  so.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  so.fixed_gamma = mfne.gamma_star;
  so.faults = faults;
  so.shards = static_cast<std::size_t>(args.get_long("shards", 0));
  so.stream_log = args.get_path("stream-log");
  if (args.has("window") || !so.stream_log.empty())
    so.sample_interval = args.get_double("window", 1.0);
  so.transport = parse_transport(args.get_string("transport", "inproc"));
  parse_workers_flag(args, so.transport, so.workers, so.worker_addresses);
  so.stream_counters = args.get_long("counters", 1) != 0;
  const std::string service = args.get_string("service", "exp");
  // TCP ranks rebuild their samplers from wire-describable specs; the
  // other transports keep taking the factory closures directly.  Either
  // route materializes the same sampler, so results do not depend on it.
  sim::SamplerSpec service_spec;
  if (service == "erlang4") {
    service_spec.kind = sim::SamplerSpec::Kind::kErlang;
    service_spec.param = 4.0;
  } else if (service == "hyperexp4") {
    service_spec.kind = sim::SamplerSpec::Kind::kHyperExponential;
    service_spec.param = 4.0;
  } else if (service == "empirical") {
    service_spec.kind = sim::SamplerSpec::Kind::kEmpirical;
    service_spec.data = random::synthetic_yolo_processing_times().samples();
  } else if (service != "exp") {
    throw RuntimeError("unknown --service (exp|erlang4|hyperexp4|empirical)");
  }
  if (so.transport == sim::TransportKind::kTcp)
    so.service_spec = service_spec;
  else if (service != "exp")
    so.service = sim::make_service_sampler(service_spec);

  std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
  if (faults && faults->churn_arrivals() > 0) {
    // Churn joiners also best-respond to the equilibrium utilization.
    const double g_star = cfg.delay(mfne.gamma_star);
    for (const core::UserParams& u : faults->churn_users())
      xs.push_back(static_cast<double>(core::best_threshold(u, g_star)));
  }
  const std::string policy = args.get_string("policy", "tro");
  if (policy != "tro" && policy != "price" && policy != "minority")
    throw RuntimeError("unknown --policy (tro|price|minority)");
  if (so.transport != sim::TransportKind::kInProcess && policy != "tro")
    throw RuntimeError(
        "--transport=process and --transport=tcp require --policy=tro (the "
        "price and minority controllers retune virtual policies that cannot "
        "cross a process or machine boundary)");
  if (policy != "tro") {
    if (args.has("replications") || args.has("target-ci") ||
        args.has("target-rel"))
      throw RuntimeError("--policy=" + policy +
                         " runs one closed-loop simulation; it cannot "
                         "combine with replications or sequential stopping");
    if (policy == "price") {
      sim::PriceBasedOptions po;
      po.gamma_target = args.get_double("gamma-target", mfne.gamma_star);
      po.update_period = args.get_double("update-period", 5.0);
      po.warmup = so.warmup;
      po.horizon = so.horizon;
      po.seed = so.seed;
      po.topology = topology;
      po.service = so.service;
      po.faults = faults;
      po.shards = so.shards;
      po.sample_interval = so.sample_interval;
      po.stream_log = so.stream_log;
      const sim::PriceBasedResult r =
          sim::run_price_based(pop.users, cfg.capacity, cfg.delay, po);
      std::printf(
          "scenario: %s  policy=price  clusters=%zu  target gamma=%.4f\n",
          cfg.name.c_str(), topology.clusters, po.gamma_target);
      for (std::size_t k = 0; k < r.final_prices.size(); ++k)
        std::printf("cluster %zu: price=%.4f  gamma=%.4f\n", k,
                    r.final_prices[k],
                    k < r.run.cluster_utilization.size()
                        ? r.run.cluster_utilization[k]
                        : 0.0);
      std::printf("%s", sim::summarize(r.run).c_str());
      if (!so.stream_log.empty())
        std::printf("telemetry stream written to %s (view: mec tail %s)\n",
                    so.stream_log.c_str(), so.stream_log.c_str());
      return 0;
    }
    sim::MinorityGameRunOptions mo;
    mo.game.seed = so.seed;
    mo.thresholds = xs;
    mo.update_period = args.get_double("update-period", 5.0);
    mo.warmup = so.warmup;
    mo.horizon = so.horizon;
    mo.seed = so.seed;
    mo.topology = topology;
    mo.service = so.service;
    mo.faults = faults;
    mo.shards = so.shards;
    mo.sample_interval = so.sample_interval;
    mo.stream_log = so.stream_log;
    const sim::MinorityGameRunResult r =
        sim::run_minority_game(pop.users, cfg.capacity, cfg.delay, mo);
    std::printf(
        "scenario: %s  policy=minority  clusters=%zu  rounds=%zu  mean "
        "attendance=%.2f\n",
        cfg.name.c_str(), topology.clusters, r.attendance.size(),
        r.mean_attendance);
    std::printf("%s", sim::summarize(r.run).c_str());
    if (!so.stream_log.empty())
      std::printf("telemetry stream written to %s (view: mec tail %s)\n",
                  so.stream_log.c_str(), so.stream_log.c_str());
    return 0;
  }
  const auto replications =
      static_cast<std::size_t>(args.get_long("replications", 1));
  const bool sequential = args.has("target-ci") || args.has("target-rel");
  if (so.transport != sim::TransportKind::kInProcess &&
      (sequential || replications > 1))
    throw RuntimeError(
        "--transport=process and --transport=tcp run a single simulation; "
        "replicated runs already parallelize across replicas (drop "
        "--transport or the replication flags)");
  if (sequential) {
    if (!so.stream_log.empty())
      throw RuntimeError(
          "--stream-log streams a single run; it cannot combine with "
          "sequential replication (the replicas would race on one file)");
    parallel::SequentialOptions sq;
    sq.metric = parallel::parse_metric(args.get_string("metric", "mean-cost"));
    sq.confidence = args.get_double("confidence", 0.95);
    sq.target_half_width = args.get_double("target-ci", 0.0);
    sq.target_relative = args.get_double("target-rel", 0.0);
    if (args.has("replications"))
      sq.min_replications = std::max<std::size_t>(replications, 2);
    sq.max_replications = static_cast<std::size_t>(
        args.get_long("max-replications", 512));
    sq.wave = static_cast<std::size_t>(args.get_long("wave", 8));
    sq.threads = static_cast<std::size_t>(args.get_long("threads", 0));
    const parallel::SequentialResult r = parallel::run_until_confident(
        pop.users, cfg.capacity, cfg.delay, so, xs, sq);
    std::printf("scenario: %s  service=%s  gamma*=%.4f  threads=%zu\n",
                cfg.name.c_str(), service.c_str(), mfne.gamma_star,
                parallel::resolve_thread_count(sq.threads));
    std::printf("%s", parallel::summarize(r, sq.metric).c_str());
    std::printf("%s", parallel::summarize(r.aggregate).c_str());
    std::printf(
        "replay: mec simulate ... --replications=%zu reproduces this "
        "aggregate bit-identically\n",
        r.replications);
    return 0;
  }
  if (replications > 1) {
    if (!so.stream_log.empty())
      throw RuntimeError(
          "--stream-log streams a single run; it cannot combine with "
          "--replications > 1 (the replicas would race on one file)");
    parallel::ReplicationOptions ro;
    ro.replications = replications;
    ro.threads = static_cast<std::size_t>(args.get_long("threads", 0));
    ro.confidence = args.get_double("confidence", 0.95);
    const parallel::ReplicationResult r = parallel::run_replications(
        pop.users, cfg.capacity, cfg.delay, so, xs, ro);
    std::printf(
        "scenario: %s  service=%s  gamma*=%.4f  threads=%zu\n",
        cfg.name.c_str(), service.c_str(), mfne.gamma_star,
        parallel::resolve_thread_count(ro.threads));
    std::printf("%s", parallel::summarize(r).c_str());
    return 0;
  }
  sim::MecSimulation des(pop.users, cfg.capacity, cfg.delay, so);
  const sim::SimulationResult r = des.run_tro(xs);
  std::printf("scenario: %s  service=%s  gamma*=%.4f\n", cfg.name.c_str(),
              service.c_str(), mfne.gamma_star);
  std::printf("%s", sim::summarize(r).c_str());
  if (!so.stream_log.empty())
    std::printf("telemetry stream written to %s (view: mec tail %s)\n",
                so.stream_log.c_str(), so.stream_log.c_str());
  return 0;
}

int cmd_closedloop(const io::Args& args) {
  auto known = kCommonFlags;
  known.insert({"horizon", "period", "eta0", "epsilon", "async", "trace",
                "fault-schedule", "drift-margin", "csv", "shards",
                "stream-log", "window", "transport", "workers", "counters"});
  args.reject_unknown(known);
  const auto cfg = build_scenario(args);
  const auto pop = population::sample_population(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 42)));
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  sim::ClosedLoopOptions opt;
  opt.update_period = args.get_double("period", opt.update_period);
  opt.horizon = args.get_double("horizon", opt.horizon);
  opt.eta0 = args.get_double("eta0", opt.eta0);
  opt.epsilon = args.get_double("epsilon", opt.epsilon);
  opt.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  opt.shards = static_cast<std::size_t>(args.get_long("shards", 0));
  opt.stream_log = args.get_path("stream-log");
  if (args.has("window") || !opt.stream_log.empty())
    opt.sample_interval = args.get_double("window", 1.0);
  opt.transport = parse_transport(args.get_string("transport", "inproc"));
  parse_workers_flag(args, opt.transport, opt.workers, opt.worker_addresses);
  opt.stream_counters = args.get_long("counters", 1) != 0;
  const double async = args.get_double("async", 1.0);
  if (async < 1.0) opt.update_gate = core::make_bernoulli_gate(async, 1);
  opt.faults = build_faults(args, cfg);
  if (opt.faults) {
    // Under a fault schedule Algorithm 1 must not stay frozen when the
    // environment moves; the margin is tunable for sensitivity studies.
    opt.resume_on_drift = true;
    opt.drift_margin = args.get_double("drift-margin", opt.drift_margin);
  }

  const sim::ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  std::printf(
      "scenario: %s  N=%zu  period=%.1fs  horizon=%.0fs  async=%.2f\n",
      cfg.name.c_str(), pop.size(), opt.update_period, opt.horizon, async);
  std::printf("epochs=%zu  settled=%s  drift-resumes=%u\n", r.epochs.size(),
              r.estimate_settled ? "yes" : "no", r.drift_resumes);
  std::printf(
      "gamma_hat = %.5f   run-wide measured gamma = %.5f   oracle gamma* = "
      "%.5f\n",
      r.final_gamma_hat, r.run.measured_utilization, star);
  std::printf("%s", sim::summarize(r.run).c_str());
  if (args.has("csv")) {
    // Epoch trajectory for external plotting: the DTU re-convergence figure
    // is gamma_hat/gamma_measured vs time with the capacity scale overlaid.
    std::vector<double> t, gm, gh, eta, mx, scale;
    for (const auto& e : r.epochs) {
      t.push_back(e.time);
      gm.push_back(e.gamma_measured);
      gh.push_back(e.gamma_hat);
      eta.push_back(e.eta);
      mx.push_back(e.mean_threshold);
      scale.push_back(opt.faults ? opt.faults->capacity_scale_at(e.time)
                                 : 1.0);
    }
    const std::string path = args.get_path("csv");
    io::write_csv(path,
                  {"time_s", "gamma_measured", "gamma_hat", "eta",
                   "mean_threshold", "capacity_scale"},
                  {t, gm, gh, eta, mx, scale});
    std::printf("epoch trajectory written to %s\n", path.c_str());
  }
  if (!opt.stream_log.empty())
    std::printf("telemetry stream written to %s (view: mec tail %s)\n",
                opt.stream_log.c_str(), opt.stream_log.c_str());
  if (args.get_bool("trace", false)) {
    std::printf("\n  time(s)  gamma_meas  gamma_hat  eta\n");
    for (const auto& e : r.epochs)
      std::printf("  %-8.1f %-11.5f %-10.5f %-8.5f\n", e.time,
                  e.gamma_measured, e.gamma_hat, e.eta);
  }
  return 0;
}

int cmd_worker(const io::Args& args) {
  args.reject_unknown({"listen", "max-runs", "quiet", "help"});
  if (!args.has("listen"))
    throw RuntimeError(
        "usage: mec worker --listen=<host:port> [--max-runs=<n>] "
        "[--quiet=<0|1>]");
  net::WorkerDaemon::Options opt;
  // Port 0 binds an ephemeral port (logged at startup) — handy for tests
  // and for running several daemons on one host without picking ports.
  opt.listen = net::parse_address(args.get_string("listen", ""),
                                  /*allow_port_zero=*/true);
  const long max_runs = args.get_long("max-runs", 0);
  if (max_runs < 0)
    throw RuntimeError("--max-runs must be >= 0 (0 = serve forever)");
  opt.max_runs = static_cast<std::size_t>(max_runs);
  opt.quiet = args.get_long("quiet", 0) != 0;
  net::WorkerDaemon daemon(opt);
  return daemon.serve();
}

int cmd_tail(const io::Args& args, const std::string& positional_path) {
  args.reject_unknown({"log", "follow", "check", "interval", "csv",
                       "hist-csv", "max-updates", "help"});
  const std::string path =
      positional_path.empty() ? args.get_path("log") : positional_path;
  if (path.empty())
    throw RuntimeError("usage: mec tail <run.meclog> [--follow] [--check]");
  obs::TailOptions opt;
  opt.follow = args.get_bool("follow", false);
  opt.check = args.get_bool("check", false);
  opt.interval_ms = static_cast<int>(args.get_long("interval", 500));
  opt.csv = args.get_path("csv");
  opt.hist_csv = args.get_path("hist-csv");
  opt.max_updates =
      static_cast<std::uint64_t>(args.get_long("max-updates", 0));
#if defined(__unix__) || defined(__APPLE__)
  opt.ansi = opt.follow && ::isatty(STDOUT_FILENO) != 0;
#endif
  return obs::run_tail(path, opt);
}

int cmd_compare(const io::Args& args) {
  args.reject_unknown(kCommonFlags);
  const auto cfg = build_scenario(args);
  const auto pop = population::sample_population(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 42)));

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
  const double dtu_cost =
      core::average_cost(pop.users, xs, cfg.delay, mfne.gamma_star);
  const auto dpo =
      baseline::solve_dpo_equilibrium(pop.users, cfg.delay, cfg.capacity);
  const auto one_rho =
      baseline::solve_common_rho_dpo(pop.users, cfg.delay, cfg.capacity);

  io::TextTable table("policy comparison on " + cfg.name);
  table.set_header({"policy", "avg cost", "edge gamma", "vs DTU"});
  const auto pct = [dtu_cost](double c) {
    return io::TextTable::fmt((c - dtu_cost) / dtu_cost * 100.0, 2) + "%";
  };
  table.add_row({"TRO @ MFNE (DTU)", io::TextTable::fmt(dtu_cost, 4),
                 io::TextTable::fmt(mfne.gamma_star, 4), "--"});
  table.add_row({"DPO per-user optimal", io::TextTable::fmt(dpo.average_cost, 4),
                 io::TextTable::fmt(dpo.gamma_star, 4),
                 pct(dpo.average_cost)});
  table.add_row({"DPO shared rho", io::TextTable::fmt(one_rho.average_cost, 4),
                 io::TextTable::fmt(one_rho.gamma, 4),
                 pct(one_rho.average_cost)});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  // `mec tail <path>` takes one positional operand; the flag grammar has
  // none, so lift it out before parsing.
  std::string tail_path;
  if (!raw.empty() && raw[0] == "tail" && raw.size() >= 2 &&
      raw[1].rfind("--", 0) != 0) {
    tail_path = raw[1];
    raw.erase(raw.begin() + 1);
  }
  try {
    const io::Args args = io::Args::parse(raw);
    if (args.command().empty() || args.get_bool("help", false) ||
        args.command() == "help") {
      std::printf("%s", kUsage);
      return args.command().empty() && !raw.empty() ? 1 : 0;
    }
    if (args.command() == "scenarios") return cmd_scenarios();
    if (args.command() == "mfne") return cmd_mfne(args);
    if (args.command() == "dtu") return cmd_dtu(args);
    if (args.command() == "simulate") return cmd_simulate(args);
    if (args.command() == "closedloop") return cmd_closedloop(args);
    if (args.command() == "compare") return cmd_compare(args);
    if (args.command() == "tail") return cmd_tail(args, tail_path);
    if (args.command() == "worker") return cmd_worker(args);
    std::fprintf(stderr, "unknown command '%s'\n%s", args.command().c_str(),
                 kUsage);
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

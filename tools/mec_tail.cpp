// mec_tail — standalone viewer for .meclog telemetry streams.
//
//   mec_tail <run.meclog> [--follow] [--check] [--interval=<ms>]
//            [--csv=<file>] [--hist-csv=<file>] [--max-updates=<k>]
//
// Identical to `mec tail`, but links only the obs/io/stats layers — it can
// ship to a monitoring box without the simulation engine.  --follow keeps
// polling a growing log until the writer's footer lands; --check validates
// frame CRCs and the footer and sets the exit status (for CI gates).
#include <cstdio>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/io/args.hpp"
#include "mec/obs/tail.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

int main(int argc, char** argv) {
  using namespace mec;
  // Grammar: one positional log path plus flags, in any order.
  std::vector<std::string> raw;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (path.empty() && token.rfind("--", 0) != 0)
      path = token;
    else
      raw.push_back(token);
  }
  try {
    // A leading synthetic command keeps Args from eating the first flag.
    raw.insert(raw.begin(), "tail");
    const io::Args args = io::Args::parse(raw);
    args.reject_unknown(
        {"follow", "check", "interval", "csv", "hist-csv", "max-updates",
         "help"});
    if (path.empty() || args.get_bool("help", false)) {
      std::printf(
          "usage: mec_tail <run.meclog> [--follow] [--check] "
          "[--interval=<ms>] [--csv=<file>] [--hist-csv=<file>]\n");
      return path.empty() && !args.get_bool("help", false) ? 1 : 0;
    }
    obs::TailOptions opt;
    opt.follow = args.get_bool("follow", false);
    opt.check = args.get_bool("check", false);
    opt.interval_ms = static_cast<int>(args.get_long("interval", 500));
    opt.csv = args.get_string("csv", "");
    opt.hist_csv = args.get_string("hist-csv", "");
    opt.max_updates =
        static_cast<std::uint64_t>(args.get_long("max-updates", 0));
#if defined(__unix__) || defined(__APPLE__)
    opt.ansi = opt.follow && ::isatty(STDOUT_FILENO) != 0;
#endif
    return obs::run_tail(path, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
